#include "verify/verifier.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace raptrack::verify {

Verifier::Verifier(crypto::Key key, u64 rng_seed)
    : key_(std::move(key)), rng_(rng_seed) {}

void Verifier::expect_rap(const Program& program,
                          const rewrite::Manifest& manifest, Address entry) {
  mode_ = ReplayMode::Rap;
  program_ = &program;
  rap_manifest_ = &manifest;
  entry_ = entry;
  expected_h_mem_ = crypto::Sha256::hash(program.bytes());
}

void Verifier::expect_naive(const Program& program, Address entry) {
  mode_ = ReplayMode::Naive;
  program_ = &program;
  entry_ = entry;
  expected_h_mem_ = crypto::Sha256::hash(program.bytes());
}

void Verifier::expect_traces(const Program& program,
                             const instr::TracesManifest& manifest,
                             Address entry) {
  mode_ = ReplayMode::Traces;
  program_ = &program;
  traces_manifest_ = &manifest;
  entry_ = entry;
  expected_h_mem_ = crypto::Sha256::hash(program.bytes());
}

cfa::Challenge Verifier::fresh_challenge() {
  cfa::Challenge chal;
  for (size_t i = 0; i < chal.size(); i += 8) {
    const u64 word = rng_.next();
    for (size_t j = 0; j < 8 && i + j < chal.size(); ++j) {
      chal[i + j] = static_cast<u8>(word >> (8 * j));
    }
  }
  outstanding_.push_back(chal);
  return chal;
}

VerificationResult Verifier::verify(
    const cfa::Challenge& chal, const std::vector<cfa::SignedReport>& reports) {
  VerificationResult result;
  if (!mode_) {
    result.detail = "verifier has no expected deployment";
    return result;
  }
  if (reports.empty()) {
    result.detail = "no reports";
    return result;
  }

  // (1) Authenticity: every report carries a valid MAC under the RoT key.
  for (const auto& report : reports) {
    if (!report.verify(key_)) {
      result.detail = "report MAC invalid (seq " +
                      std::to_string(report.sequence) + ")";
      return result;
    }
  }
  result.authentic = true;

  // (2) Freshness: the challenge was issued by us, is not reused, and every
  //     report echoes it.
  const auto outstanding_it =
      std::find(outstanding_.begin(), outstanding_.end(), chal);
  const bool was_used = std::find(used_.begin(), used_.end(), chal) != used_.end();
  if (outstanding_it == outstanding_.end() || was_used) {
    result.detail = "challenge not outstanding (replay?)";
    return result;
  }
  for (const auto& report : reports) {
    if (report.chal != chal) {
      result.detail = "report echoes a different challenge";
      return result;
    }
  }
  outstanding_.erase(outstanding_it);
  used_.push_back(chal);
  result.fresh = true;

  // (3) Chain integrity: sequence numbers 0..n-1, exactly one final, last.
  for (size_t i = 0; i < reports.size(); ++i) {
    const bool should_be_final = (i + 1 == reports.size());
    if (reports[i].sequence != i || reports[i].final_report != should_be_final) {
      result.detail = "report chain broken at seq " + std::to_string(i);
      return result;
    }
  }
  result.chain_ok = true;

  // (4) Memory integrity: H_MEM consistent and equal to the expected image.
  for (const auto& report : reports) {
    if (!crypto::digest_equal(report.h_mem, expected_h_mem_)) {
      result.detail = "H_MEM does not match the expected binary";
      return result;
    }
  }
  result.memory_ok = true;

  // (5) Decode + concatenate evidence.
  ReplayInputs inputs;
  try {
    for (const auto& report : reports) {
      switch (report.type) {
        case cfa::PayloadType::RapPackets: {
          if (*mode_ != ReplayMode::Rap) throw Error("payload/mode mismatch");
          auto chunk = cfa::decode_packets(report.payload);
          inputs.packets.insert(inputs.packets.end(), chunk.begin(), chunk.end());
          break;
        }
        case cfa::PayloadType::RapFinal: {
          if (*mode_ != ReplayMode::Rap) throw Error("payload/mode mismatch");
          auto final_payload = cfa::decode_rap_final(report.payload);
          inputs.packets.insert(inputs.packets.end(),
                                final_payload.packets.begin(),
                                final_payload.packets.end());
          inputs.loop_values = std::move(final_payload.loop_values);
          break;
        }
        case cfa::PayloadType::NaivePackets: {
          if (*mode_ != ReplayMode::Naive) throw Error("payload/mode mismatch");
          auto chunk = cfa::decode_packets(report.payload);
          inputs.packets.insert(inputs.packets.end(), chunk.begin(), chunk.end());
          break;
        }
        case cfa::PayloadType::RapSpecPackets: {
          if (*mode_ != ReplayMode::Rap) throw Error("payload/mode mismatch");
          if (speculation_ == nullptr) {
            throw Error("speculated payload but no dictionary provisioned");
          }
          auto chunk = cfa::decode_speculated(report.payload, *speculation_);
          inputs.packets.insert(inputs.packets.end(), chunk.begin(), chunk.end());
          break;
        }
        case cfa::PayloadType::RapSpecFinal: {
          if (*mode_ != ReplayMode::Rap) throw Error("payload/mode mismatch");
          if (speculation_ == nullptr) {
            throw Error("speculated payload but no dictionary provisioned");
          }
          auto final_payload =
              cfa::decode_spec_final(report.payload, *speculation_);
          inputs.packets.insert(inputs.packets.end(),
                                final_payload.packets.begin(),
                                final_payload.packets.end());
          inputs.loop_values = std::move(final_payload.loop_values);
          break;
        }
        case cfa::PayloadType::TracesChunk: {
          if (*mode_ != ReplayMode::Traces) throw Error("payload/mode mismatch");
          auto chunk = cfa::decode_traces_chunk(report.payload);
          auto& log = inputs.traces_log;
          log.direction_bits.insert(log.direction_bits.end(),
                                    chunk.direction_bits.begin(),
                                    chunk.direction_bits.end());
          log.indirect_targets.insert(log.indirect_targets.end(),
                                      chunk.indirect_targets.begin(),
                                      chunk.indirect_targets.end());
          log.loop_conditions.insert(log.loop_conditions.end(),
                                     chunk.loop_values.begin(),
                                     chunk.loop_values.end());
          break;
        }
      }
    }
  } catch (const Error& e) {
    result.detail = std::string("payload decode failed: ") + e.what();
    return result;
  }

  // (6) Lossless path reconstruction + (7) attack policies.
  PathReplayer replayer(*program_, entry_, *mode_);
  replayer.set_rap_manifest(rap_manifest_);
  replayer.set_traces_manifest(traces_manifest_);
  replayer.set_policy(policy_);
  result.replay = replayer.replay(inputs);
  result.inputs = std::move(inputs);
  result.reconstruction_ok = result.replay.complete;
  result.policy_ok = result.replay.findings.empty();
  if (!result.reconstruction_ok) {
    result.detail = "reconstruction failed: " + result.replay.failure;
  } else if (!result.policy_ok) {
    result.detail = "attack detected: " + result.replay.findings.front().description;
  }
  return result;
}

}  // namespace raptrack::verify
