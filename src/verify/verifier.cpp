#include "verify/verifier.hpp"

#include <algorithm>
#include <map>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace raptrack::verify {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::Accept: return "ACCEPT";
    case Verdict::Reject: return "REJECT";
    case Verdict::Inconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

Verifier::Verifier(crypto::Key key, u64 rng_seed)
    : key_schedule_(key), rng_(rng_seed) {}

namespace {

/// Length-prefixed, fixed-width field streaming so distinct results can
/// never collide by concatenation ambiguity.
struct DigestStream {
  crypto::Sha256 h;

  void u64le(u64 v) {
    u8 bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<u8>(v >> (8 * i));
    h.update(bytes);
  }
  void u32le(u32 v) { u64le(v); }
  void boolean(bool v) { u64le(v ? 1 : 0); }
  void str(const std::string& s) {
    u64le(s.size());
    h.update(std::span<const u8>(reinterpret_cast<const u8*>(s.data()),
                                 s.size()));
  }
};

}  // namespace

crypto::Digest verification_digest(const VerificationResult& result) {
  DigestStream out;
  out.u64le(static_cast<u64>(result.verdict));
  out.boolean(result.authentic);
  out.boolean(result.fresh);
  out.boolean(result.chain_ok);
  out.boolean(result.memory_ok);
  out.boolean(result.reconstruction_ok);
  out.boolean(result.policy_ok);
  out.boolean(result.partial_reconstruction);
  out.str(result.detail);
  out.u64le(result.gaps.size());
  for (const auto& gap : result.gaps) {
    out.u32le(gap.first_missing);
    out.u32le(gap.missing_count);
  }
  out.u64le(result.chain_notes.size());
  for (const auto& note : result.chain_notes) out.str(note);
  const ReplayResult& replay = result.replay;
  out.boolean(replay.complete);
  out.str(replay.failure);
  out.u64le(replay.steps);
  out.u64le(replay.index_hits);
  out.u64le(replay.index_fallbacks);
  // memo_hits / memo_misses intentionally omitted: cache-warmth telemetry,
  // not part of the verification outcome.
  out.u64le(replay.events.size());
  for (const auto& event : replay.events) {
    out.u32le(event.source);
    out.u32le(event.destination);
    out.u64le(static_cast<u64>(event.kind));
  }
  out.u64le(replay.findings.size());
  for (const auto& finding : replay.findings) {
    out.u32le(finding.site);
    out.u32le(finding.expected);
    out.u32le(finding.observed);
    out.str(finding.description);
  }
  const ReplayInputs& inputs = result.inputs;
  out.u64le(inputs.packets.size());
  for (const auto& packet : inputs.packets) {
    out.u32le(packet.source);
    out.u32le(packet.destination);
    out.boolean(packet.atomic_restart);
  }
  out.u64le(inputs.loop_values.size());
  for (const u32 value : inputs.loop_values) out.u32le(value);
  out.u64le(inputs.traces_log.direction_bits.size());
  for (const bool bit : inputs.traces_log.direction_bits) out.boolean(bit);
  out.u64le(inputs.traces_log.indirect_targets.size());
  for (const Address target : inputs.traces_log.indirect_targets) {
    out.u32le(target);
  }
  out.u64le(inputs.traces_log.loop_conditions.size());
  for (const u32 value : inputs.traces_log.loop_conditions) out.u32le(value);
  return out.h.finalize();
}

void Verifier::expect_rap(const Program& program,
                          const rewrite::Manifest& manifest, Address entry) {
  deployment_ = Deployment::rap(program, manifest, entry);
}

void Verifier::expect_naive(const Program& program, Address entry) {
  deployment_ = Deployment::naive(program, entry);
}

void Verifier::expect_traces(const Program& program,
                             const instr::TracesManifest& manifest,
                             Address entry) {
  deployment_ = Deployment::traces(program, manifest, entry);
}

cfa::Challenge Verifier::fresh_challenge() {
  cfa::Challenge chal;
  for (size_t i = 0; i < chal.size(); i += 8) {
    const u64 word = rng_.next();
    for (size_t j = 0; j < 8 && i + j < chal.size(); ++j) {
      chal[i + j] = static_cast<u8>(word >> (8 * j));
    }
  }
  sessions_.issue(0, chal);
  // Cross-session prefetch: a challenge means a verification is imminent —
  // re-touch this device's tagged cache entries so tick-LRU keeps them
  // resident through the replay (the single-device facade is device 0).
  if (deployment_ && config_.use_memo && kMemoEnabled) {
    deployment_->memo().prefetch(0);
  }
  return chal;
}

void Verifier::adopt_challenge(const cfa::Challenge& chal) {
  sessions_.issue(0, chal);
  if (deployment_ && config_.use_memo && kMemoEnabled) {
    deployment_->memo().prefetch(0);
  }
}

namespace {

/// Decode one report's payload into `inputs`. Returns an empty string on
/// success, the rejection reason otherwise. Never throws.
std::string decode_into(const cfa::ReportView& report, ReplayMode mode,
                        const cfa::SpeculationDict* speculation,
                        ReplayInputs& inputs) {
  using cfa::PayloadType;
  if (!cfa::payload_type_valid(static_cast<u8>(report.type))) {
    return "unknown payload type";
  }
  switch (report.type) {
    case PayloadType::RapPackets: {
      if (mode != ReplayMode::Rap) return "payload/mode mismatch";
      auto chunk = cfa::try_decode_packets(report.payload);
      if (!chunk.ok()) return chunk.error;
      inputs.packets.insert(inputs.packets.end(), chunk->begin(), chunk->end());
      return {};
    }
    case PayloadType::RapFinal: {
      if (mode != ReplayMode::Rap) return "payload/mode mismatch";
      auto final_payload = cfa::try_decode_rap_final(report.payload);
      if (!final_payload.ok()) return final_payload.error;
      inputs.packets.insert(inputs.packets.end(),
                            final_payload->packets.begin(),
                            final_payload->packets.end());
      inputs.loop_values = std::move(final_payload->loop_values);
      return {};
    }
    case PayloadType::NaivePackets: {
      if (mode != ReplayMode::Naive) return "payload/mode mismatch";
      auto chunk = cfa::try_decode_packets(report.payload);
      if (!chunk.ok()) return chunk.error;
      inputs.packets.insert(inputs.packets.end(), chunk->begin(), chunk->end());
      return {};
    }
    case PayloadType::RapSpecPackets: {
      if (mode != ReplayMode::Rap) return "payload/mode mismatch";
      if (speculation == nullptr) {
        return "speculated payload but no dictionary provisioned";
      }
      try {
        auto chunk = cfa::decode_speculated(report.payload, *speculation);
        inputs.packets.insert(inputs.packets.end(), chunk.begin(), chunk.end());
      } catch (const Error& e) {
        return e.what();
      }
      return {};
    }
    case PayloadType::RapSpecFinal: {
      if (mode != ReplayMode::Rap) return "payload/mode mismatch";
      if (speculation == nullptr) {
        return "speculated payload but no dictionary provisioned";
      }
      try {
        auto final_payload =
            cfa::decode_spec_final(report.payload, *speculation);
        inputs.packets.insert(inputs.packets.end(),
                              final_payload.packets.begin(),
                              final_payload.packets.end());
        inputs.loop_values = std::move(final_payload.loop_values);
      } catch (const Error& e) {
        return e.what();
      }
      return {};
    }
    case PayloadType::TracesChunk: {
      if (mode != ReplayMode::Traces) return "payload/mode mismatch";
      auto chunk = cfa::try_decode_traces_chunk(report.payload);
      if (!chunk.ok()) return chunk.error;
      auto& log = inputs.traces_log;
      log.direction_bits.insert(log.direction_bits.end(),
                                chunk->direction_bits.begin(),
                                chunk->direction_bits.end());
      log.indirect_targets.insert(log.indirect_targets.end(),
                                  chunk->indirect_targets.begin(),
                                  chunk->indirect_targets.end());
      log.loop_conditions.insert(log.loop_conditions.end(),
                                 chunk->loop_values.begin(),
                                 chunk->loop_values.end());
      return {};
    }
  }
  return "unknown payload type";
}

// RAII observability for one verify_report_chain call: a span session for
// the phase timeline plus, on exit (any of the many return paths), verdict
// tallies and replay-index cache counters. No-cost when RAP_OBS is off.
struct ChainObs {
  const VerificationResult* result;
  obs::SessionId session = 0;

  explicit ChainObs(const VerificationResult& r) : result(&r) {
    if constexpr (obs::kEnabled) {
      session = obs::tracer().begin_session("verify_chain");
    }
  }

  obs::SpanTracer::Scope phase(const char* name) {
    return obs::tracer().span(session, name);
  }

  ~ChainObs() {
    if constexpr (obs::kEnabled) {
      auto& reg = obs::registry();
      reg.counter("verify.chains").inc();
      switch (result->verdict) {
        case Verdict::Accept:
          reg.counter("verify.verdict.accept").inc();
          break;
        case Verdict::Reject:
          reg.counter("verify.verdict.reject").inc();
          break;
        case Verdict::Inconclusive:
          reg.counter("verify.verdict.inconclusive").inc();
          break;
      }
      reg.counter("verify.replay_index_hits").inc(result->replay.index_hits);
      reg.counter("verify.replay_index_fallbacks")
          .inc(result->replay.index_fallbacks);
    }
  }
};

}  // namespace

VerificationResult verify_report_chain(
    const Deployment& deployment, const VerifyConfig& config,
    const crypto::HmacKeySchedule& key, SessionStore& sessions,
    DeviceId device, const cfa::Challenge& chal,
    std::span<const cfa::ReportView> reports, bool macs_verified) {
  VerificationResult result;
  const auto reject = [&result](std::string why) -> VerificationResult& {
    result.verdict = Verdict::Reject;
    if (result.detail.empty()) result.detail = std::move(why);
    return result;
  };

  ChainObs cobs(result);
  if (reports.empty()) return reject("no reports");

  // (1) Authenticity: every report carries a valid MAC under the RoT key.
  //     An invalid MAC is positive evidence of forgery or transport
  //     corruption — reject before trusting any other field. The wire
  //     admission path batch-checks MACs straight off the receive buffer
  //     and passes macs_verified to skip the duplicate work here.
  if (!macs_verified) {
    auto span = cobs.phase("mac_check");
    // Wire-backed views expose their contiguous MAC input: feed the whole
    // chain to the multi-buffer HMAC lanes in one batch. Field-backed views
    // (no contiguous input) keep the streaming check.
    const bool batchable =
        reports.size() >= 2 &&
        std::all_of(reports.begin(), reports.end(),
                    [](const cfa::ReportView& r) { return !r.mac_input.empty(); });
    if (batchable) {
      std::vector<crypto::MacClaim> claims;
      claims.reserve(reports.size());
      for (const auto& report : reports) claims.push_back(report.claim());
      if (const auto bad = crypto::hmac_verify_batch(key, claims)) {
        // Identical wording to the serial check below, so batched and serial
        // admission of the same chain yield byte-identical verdicts.
        return reject("report MAC invalid (seq " +
                      std::to_string(reports[*bad].sequence) + ")");
      }
    } else {
      for (const auto& report : reports) {
        if (!report.verify(key)) {
          return reject("report MAC invalid (seq " +
                        std::to_string(report.sequence) + ")");
        }
      }
    }
  }
  result.authentic = true;

  // (2) Freshness: the challenge was issued by us, is not reused, and every
  //     report echoes it. The challenge is consumed only once a terminal
  //     verdict (Accept/Reject) is reached — an Inconclusive chain keeps it
  //     outstanding so the Prover can retransmit missing chunks.
  if (sessions.state(device, chal) != SessionStore::ChallengeState::Outstanding) {
    return reject("challenge not outstanding (replay?)");
  }
  for (const auto& report : reports) {
    if (report.chal != chal) {
      // Authentic evidence, but bound to some other challenge: not a
      // response to `chal` at all. Reject the pairing without burning the
      // challenge — the genuine response may still arrive.
      return reject("report echoes a different challenge");
    }
  }
  result.fresh = true;
  const auto consume_challenge = [&] { sessions.consume(device, chal); };

  // (3) Chain integrity: as received, sequence numbers must be 0..n-1 with
  //     exactly one final report in last position.
  bool strict_ok = true;
  for (size_t i = 0; i < reports.size(); ++i) {
    const bool should_be_final = (i + 1 == reports.size());
    if (reports[i].sequence != i ||
        reports[i].final_report != should_be_final) {
      strict_ok = false;
      break;
    }
  }
  result.chain_ok = strict_ok;

  // Resync pass for a damaged chain: dedupe exact retransmissions, order by
  // authenticated sequence number, and map the gaps. Equivocation (two
  // different authentic reports claiming the same sequence) is a terminal
  // tamper signal, not damage.
  std::vector<const cfa::ReportView*> usable;
  if (strict_ok) {
    for (const auto& report : reports) usable.push_back(&report);
  } else {
    auto span = cobs.phase("resync");
    std::map<u32, const cfa::ReportView*> by_sequence;
    for (const auto& report : reports) {
      auto [it, inserted] = by_sequence.emplace(report.sequence, &report);
      if (inserted) continue;
      if (it->second->same_bytes(report)) {
        result.chain_notes.push_back(
            "duplicate report seq " + std::to_string(report.sequence) +
            " dropped (identical retransmission)");
      } else {
        consume_challenge();
        return reject("equivocating reports at seq " +
                      std::to_string(report.sequence));
      }
    }
    const u32 max_seq = by_sequence.rbegin()->first;
    for (const auto& [seq, report] : by_sequence) {
      if (report->final_report && seq != max_seq) {
        consume_challenge();
        return reject("report after the final (final at seq " +
                      std::to_string(seq) + ")");
      }
    }
    if (!by_sequence.rbegin()->second->final_report) {
      result.chain_notes.push_back("final report missing (chain truncated)");
    }
    // Gap map over [0, max_seq].
    u32 expected = 0;
    for (const auto& [seq, report] : by_sequence) {
      if (seq > expected) {
        result.gaps.push_back({expected, seq - expected});
        result.chain_notes.push_back(
            "gap: reports " + std::to_string(expected) + ".." +
            std::to_string(seq - 1) + " missing");
      }
      expected = seq + 1;
    }
    if (result.gaps.empty() && by_sequence.size() == reports.size() &&
        by_sequence.rbegin()->second->final_report) {
      result.chain_notes.push_back(
          "chain arrived out of order; resynced by sequence");
    }
    // The reconstructible evidence is the contiguous prefix from seq 0.
    const u32 prefix_end =
        result.gaps.empty() ? max_seq + 1 : result.gaps.front().first_missing;
    for (const auto& [seq, report] : by_sequence) {
      if (seq >= prefix_end) break;
      usable.push_back(report);
    }
  }

  // (4) Memory integrity: H_MEM consistent and equal to the expected image.
  for (const auto& report : reports) {
    if (!crypto::digest_equal(deployment.expected_h_mem(), report.h_mem)) {
      consume_challenge();
      return reject("H_MEM does not match the expected binary");
    }
  }
  result.memory_ok = true;

  // (5) Decode + concatenate the usable evidence (typed decoders: hostile
  //     payload bytes yield a rejection, never a crash).
  const ReplayMode mode = deployment.mode();
  ReplayInputs inputs;
  {
  auto decode_span = cobs.phase("decode");
  for (const auto* report : usable) {
    const size_t packets_before = inputs.packets.size();
    const std::string error =
        decode_into(*report, mode, config.speculation, inputs);
    if (!error.empty()) {
      consume_challenge();
      return reject("payload decode failed: " + error);
    }
    // §IV-E protocol shape: with a provisioned watermark, a partial chunk is
    // exactly watermark/8 packets (the FLOW event fired) and the final chunk
    // strictly fewer. A fatter final chunk means the watermark never fired
    // on the device — a glitched FLOW register silently wrapping the buffer
    // — and the evidence, though authentically signed, is not trustworthy.
    if (config.expected_watermark != 0 && mode != ReplayMode::Traces) {
      const size_t chunk = inputs.packets.size() - packets_before;
      const size_t limit =
          config.expected_watermark / trace::BranchPacket::kBytes;
      if (!report->final_report && chunk != limit) {
        consume_challenge();
        return reject("partial report chunk (" + std::to_string(chunk) +
                      " packets) does not match the configured watermark");
      }
      if (report->final_report && chunk >= limit) {
        consume_challenge();
        return reject("final chunk (" + std::to_string(chunk) +
                      " packets) at or above the configured watermark — "
                      "FLOW event never fired (silent MTB wrap?)");
      }
    }
  }
  }

  // (6) Lossless path reconstruction + (7) attack policies.
  PathReplayer replayer(deployment);
  replayer.set_policy(config.policy);
  const bool memo_attached = config.use_memo && kMemoEnabled;
  if (memo_attached) replayer.set_memo(&deployment.memo());
  replayer.set_frontier(config.use_frontier);
  // Whole-chain fingerprint amortization across *calls*: keyed on the
  // challenge and the authenticated report MACs — which cover every byte the
  // fingerprint hashes — so a retransmitted or farm-retried chain seeds the
  // fingerprint instead of re-hashing all four evidence streams. A 64-bit
  // key collision is the same risk class as the fingerprint collision the
  // frontier already accepts, and the rerun-detached rule covers both.
  u64 fp_key = 0;
  if (memo_attached) {
    u64 h = 0x6a09e667f3bcc908ull;
    const auto mix = [&h](u64 v) {
      h = (h ^ v) * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull;
    };
    for (const u8 b : chal) mix(b);
    for (const auto* report : usable) {
      for (const u8 b : report->mac) mix(b);
    }
    fp_key = h;
    u64 fp = 0;
    if (deployment.memo().chain_fp_lookup(fp_key, &fp)) {
      replayer.seed_chain_fingerprint(fp);
    }
  }
  try {
    auto span = cobs.phase("replay");
    result.replay = replayer.replay(inputs);
  } catch (const Error& e) {
    consume_challenge();
    return reject(std::string("replay aborted: ") + e.what());
  }
  if (memo_attached) {
    if (const auto fp = replayer.chain_fingerprint()) {
      deployment.memo().chain_fp_store(fp_key, *fp);
    }
  }
  result.inputs = std::move(inputs);

  if (strict_ok) {
    result.reconstruction_ok = result.replay.complete;
    result.policy_ok = result.replay.findings.empty();
    if (!result.reconstruction_ok) {
      consume_challenge();
      return reject("reconstruction failed: " + result.replay.failure);
    }
    if (!result.policy_ok) {
      consume_challenge();
      return reject("attack detected: " +
                    result.replay.findings.front().description);
    }
    consume_challenge();
    result.verdict = Verdict::Accept;
    // Chain completion: tag the cache entries this session touched with the
    // device id, so the next challenge for this device can pre-touch them
    // (cross-session prefetch — tick-LRU then keeps them resident).
    if (memo_attached) {
      deployment.memo().note_session(device, replayer.touched_segment_keys(),
                                     replayer.touched_frontier_keys());
    }
    return result;
  }

  // Damaged chain: the prefix replay is an audit artifact, never an Accept.
  // Findings inside the surviving prefix are still positive attack evidence.
  result.partial_reconstruction = !result.replay.events.empty();
  if (!result.replay.findings.empty()) {
    consume_challenge();
    return reject("attack detected in partial reconstruction: " +
                  result.replay.findings.front().description);
  }
  result.verdict = Verdict::Inconclusive;
  result.detail =
      "chain damaged: " +
      (result.chain_notes.empty() ? std::string("sequence disorder")
                                  : result.chain_notes.front()) +
      " (" + std::to_string(result.replay.events.size()) +
      " transfers recovered from the surviving prefix)";
  return result;
}

VerificationResult Verifier::verify(
    const cfa::Challenge& chal, const std::vector<cfa::SignedReport>& reports) {
  if (!deployment_) {
    VerificationResult result;
    result.verdict = Verdict::Reject;
    result.detail = "verifier has no expected deployment";
    return result;
  }
  std::vector<cfa::ReportView> views;
  views.reserve(reports.size());
  for (const auto& report : reports) views.push_back(cfa::ReportView::of(report));
  return verify_report_chain(*deployment_, config_, key_schedule_, sessions_,
                             /*device=*/0, chal, views);
}

}  // namespace raptrack::verify
