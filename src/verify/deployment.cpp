#include "verify/deployment.hpp"

#include <algorithm>
#include <utility>

#include "crypto/sha256.hpp"

namespace raptrack::verify {

ReplayIndex::ReplayIndex(const Program& program, ReplayMode mode,
                         const rewrite::Manifest* rap,
                         const instr::TracesManifest* traces)
    : program_(&program), decoded_(program.base(), program.bytes()) {
  // Static successor map: resolve every direct / direct-call / conditional
  // branch target once, so the replay hot loop never re-computes them.
  targets_.assign(decoded_.slot_count(), 0);
  for (size_t i = 0; i < targets_.size(); ++i) {
    const Address pc = decoded_.base() + static_cast<Address>(i * 4);
    const auto& slot = decoded_.slot(pc);
    if (slot.kind != isa::SlotKind::Valid) continue;
    switch (isa::branch_kind(slot.instr)) {
      case isa::BranchKind::Direct:
      case isa::BranchKind::DirectCall:
      case isa::BranchKind::Conditional:
        targets_[i] = isa::branch_target(slot.instr, pc);
        break;
      default:
        break;
    }
  }

  if (mode == ReplayMode::Rap && rap != nullptr) {
    has_mtbar_ = true;
    mtbar_base_ = rap->mtbar_base;
    mtbar_limit_ = rap->mtbar_limit;
    slots_by_base_.reserve(rap->slots.size());
    slot_by_site_.reserve(rap->slots.size());
    for (const auto& slot : rap->slots) {
      slots_by_base_.push_back(&slot);
      // emplace keeps the first record per site — matching the linear
      // first-match semantics of Manifest::slot_for_site.
      slot_by_site_.emplace(slot.site, &slot);
    }
    std::sort(slots_by_base_.begin(), slots_by_base_.end(),
              [](const rewrite::SlotRecord* a, const rewrite::SlotRecord* b) {
                return a->slot_base < b->slot_base;
              });
    rap_svc_.reserve(rap->loop_veneers.size());
    for (const auto& veneer : rap->loop_veneers) {
      rap_svc_.emplace(veneer.svc_addr, &veneer);
    }
  }

  if (mode == ReplayMode::Traces && traces != nullptr) {
    veneers_by_base_.reserve(traces->veneers.size());
    traces_svc_.reserve(traces->veneers.size());
    for (const auto& veneer : traces->veneers) {
      veneers_by_base_.push_back(&veneer);
      traces_svc_.emplace(veneer.svc_addr, &veneer);
    }
    std::sort(veneers_by_base_.begin(), veneers_by_base_.end(),
              [](const instr::VeneerRecord* a, const instr::VeneerRecord* b) {
                return a->veneer_base < b->veneer_base;
              });
  }
}

const rewrite::SlotRecord* ReplayIndex::slot_containing(Address addr) const {
  // Last slot whose base is <= addr (slots are disjoint), then bounds-check.
  auto it = std::upper_bound(
      slots_by_base_.begin(), slots_by_base_.end(), addr,
      [](Address a, const rewrite::SlotRecord* s) { return a < s->slot_base; });
  if (it == slots_by_base_.begin()) return nullptr;
  const rewrite::SlotRecord* slot = *(it - 1);
  return addr < slot->slot_end ? slot : nullptr;
}

const rewrite::SlotRecord* ReplayIndex::slot_for_site(Address site) const {
  const auto it = slot_by_site_.find(site);
  return it != slot_by_site_.end() ? it->second : nullptr;
}

const rewrite::LoopVeneerRecord* ReplayIndex::rap_veneer_at_svc(
    Address svc_addr) const {
  const auto it = rap_svc_.find(svc_addr);
  return it != rap_svc_.end() ? it->second : nullptr;
}

const instr::VeneerRecord* ReplayIndex::traces_veneer_containing(
    Address addr) const {
  auto it = std::upper_bound(veneers_by_base_.begin(), veneers_by_base_.end(),
                             addr,
                             [](Address a, const instr::VeneerRecord* v) {
                               return a < v->veneer_base;
                             });
  if (it == veneers_by_base_.begin()) return nullptr;
  const instr::VeneerRecord* veneer = *(it - 1);
  return addr < veneer->veneer_end ? veneer : nullptr;
}

const instr::VeneerRecord* ReplayIndex::traces_veneer_at_svc(
    Address svc_addr) const {
  const auto it = traces_svc_.find(svc_addr);
  return it != traces_svc_.end() ? it->second : nullptr;
}

Deployment::Deployment(ReplayMode mode, Program program,
                       std::optional<rewrite::Manifest> rap,
                       std::optional<instr::TracesManifest> traces,
                       Address entry, MemoOptions memo)
    : mode_(mode),
      program_(std::move(program)),
      rap_(std::move(rap)),
      traces_(std::move(traces)),
      entry_(entry),
      h_mem_(crypto::Sha256::hash(program_.bytes())),
      memo_(std::make_unique<MemoCache>(memo)),
      index_(program_, mode_, rap_ ? &*rap_ : nullptr,
             traces_ ? &*traces_ : nullptr) {}

std::shared_ptr<const Deployment> Deployment::rap(Program program,
                                                  rewrite::Manifest manifest,
                                                  Address entry,
                                                  MemoOptions memo) {
  return std::shared_ptr<const Deployment>(
      new Deployment(ReplayMode::Rap, std::move(program), std::move(manifest),
                     std::nullopt, entry, memo));
}

std::shared_ptr<const Deployment> Deployment::naive(Program program,
                                                    Address entry,
                                                    MemoOptions memo) {
  return std::shared_ptr<const Deployment>(new Deployment(
      ReplayMode::Naive, std::move(program), std::nullopt, std::nullopt, entry,
      memo));
}

std::shared_ptr<const Deployment> Deployment::traces(
    Program program, instr::TracesManifest manifest, Address entry,
    MemoOptions memo) {
  return std::shared_ptr<const Deployment>(
      new Deployment(ReplayMode::Traces, std::move(program), std::nullopt,
                     std::move(manifest), entry, memo));
}

}  // namespace raptrack::verify
