// Protocol-level Verifier (Vrf): issues fresh challenges, authenticates the
// (partial + final) report chain, checks H_MEM against the expected deployed
// image, reconstructs the full control-flow path from CF_Log, and applies
// attack-detection policies (shadow call stack, valid indirect-call
// targets). Mirrors the §II-C/§II-D protocol and the §IV-F security
// arguments.
//
// The Verifier is adversary-facing: `verify()` must terminate with a verdict
// on *any* input — corrupted, truncated, reordered, duplicated, or forged
// report chains — and never throw or crash. Verdicts form a three-way
// taxonomy:
//   Accept        — authentic complete chain, lossless reconstruction,
//                   no policy findings.
//   Reject        — positive evidence of tampering or attack (bad MAC,
//                   replayed challenge, wrong H_MEM, equivocating reports,
//                   undecodable authenticated payload, failed reconstruction,
//                   ROP/JOP finding).
//   Inconclusive  — every surviving report is authentic but the chain is
//                   damaged (gaps, duplicates, reordering, missing final).
//                   The Verifier resyncs by sequence number, reconstructs
//                   the contiguous prefix it still has, and reports the
//                   damage as an audit trail (`gaps`, `chain_notes`).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cfa/report.hpp"
#include "cfa/speculation.hpp"
#include "common/rng.hpp"
#include "verify/deployment.hpp"
#include "verify/replayer.hpp"
#include "verify/session_store.hpp"

namespace raptrack::verify {

enum class Verdict : u8 {
  Accept,
  Reject,
  Inconclusive,
};

const char* verdict_name(Verdict verdict);

/// A hole in the partial-report chain: sequence numbers
/// [first_missing, first_missing + missing_count) never arrived.
struct ChainGap {
  u32 first_missing = 0;
  u32 missing_count = 0;

  friend bool operator==(const ChainGap&, const ChainGap&) = default;
};

struct VerificationResult {
  bool authentic = false;       ///< every report MAC valid
  bool fresh = false;           ///< challenge matches, never seen before
  bool chain_ok = false;        ///< sequence numbers contiguous, one final
  bool memory_ok = false;       ///< H_MEM matches the expected image
  bool reconstruction_ok = false;  ///< lossless path replay succeeded
  bool policy_ok = false;       ///< no ROP/JOP findings
  Verdict verdict = Verdict::Reject;
  std::string detail;           ///< first failure explanation
  std::vector<ChainGap> gaps;   ///< missing sequence ranges (resync pass)
  std::vector<std::string> chain_notes;  ///< resync audit trail
  /// Damaged-chain mode: the surviving contiguous prefix replayed into a
  /// non-empty partial path (available in `replay.events` for auditing).
  bool partial_reconstruction = false;
  ReplayResult replay;
  ReplayInputs inputs;          ///< decoded evidence (for audits/diagnostics)

  /// The overall verdict: Prv ran the expected code over an admissible path.
  bool accepted() const { return verdict == Verdict::Accept; }
};

/// Canonical digest of everything a VerificationResult *decides*: verdict,
/// flags, detail, gaps, notes, and the deterministic replay outcome (events,
/// findings, counters, decoded evidence). Deliberately excludes the memo
/// hit/miss telemetry, which depends on what other replays warmed the shared
/// cache. The differential suites pin memoized against unmemoized (and SIMD
/// against scalar) verification by comparing these digests byte-for-byte.
crypto::Digest verification_digest(const VerificationResult& result);

/// The verification core shared by the single-threaded Verifier facade and
/// the VerifierFarm workers: authenticate, freshness-check, resync, decode
/// and replay one report chain against an immutable Deployment.
///
/// All mutable protocol state (the challenge history) lives in `sessions`;
/// everything else is read-only, so any number of concurrent calls may share
/// one Deployment / key schedule / config. `macs_verified` skips the MAC
/// pass when the caller already batch-checked the chain off the wire buffer
/// (the zero-copy admission path). Total: returns a verdict for arbitrary
/// input and never throws.
VerificationResult verify_report_chain(
    const Deployment& deployment, const VerifyConfig& config,
    const crypto::HmacKeySchedule& key, SessionStore& sessions,
    DeviceId device, const cfa::Challenge& chal,
    std::span<const cfa::ReportView> reports, bool macs_verified = false);

class Verifier {
 public:
  Verifier(crypto::Key key, u64 rng_seed = 0x5eed'cafe);

  /// Provision the expected RAP-Track deployment (rewritten image +
  /// manifest, as produced by the Verifier-side offline phase). Builds a
  /// private Deployment cache — program and manifest are copied, so the
  /// arguments need not outlive the call.
  void expect_rap(const Program& program, const rewrite::Manifest& manifest,
                  Address entry);
  void expect_naive(const Program& program, Address entry);
  void expect_traces(const Program& program,
                     const instr::TracesManifest& manifest, Address entry);
  /// Share a prebuilt deployment cache (the farm/fleet provisioning path:
  /// build once, expect() everywhere).
  void expect(std::shared_ptr<const Deployment> deployment) {
    deployment_ = std::move(deployment);
  }
  std::shared_ptr<const Deployment> deployment() const { return deployment_; }

  void set_policy(ReplayPolicy policy) { config_.policy = std::move(policy); }

  /// Provision the SpecCFA-style sub-path dictionary shared with the RoT
  /// (must match the prover's, or speculated payloads fail to decode).
  void set_speculation(const cfa::SpeculationDict* dict) {
    config_.speculation = dict;
  }

  /// Provision the deployment's MTB watermark (bytes). When set, the §IV-E
  /// protocol shape is enforced: every partial report carries exactly
  /// watermark/8 packets and the final chunk strictly fewer — a final chunk
  /// at or above the watermark means the FLOW event never fired on the
  /// device (glitched watermark, silent buffer wrap) and is rejected even
  /// though the report signs valid. 0 (default) disables the check.
  void set_expected_watermark(u32 bytes) { config_.expected_watermark = bytes; }

  /// Toggle the verified sub-path memo cache (default on; no-op when
  /// RAP_MEMO is compiled out). The memo-off ablation path of the benches
  /// and the differential tests run through this.
  void set_memo(bool enabled) { config_.use_memo = enabled; }

  /// Toggle the frontier memo tier (resolved RAP-ambiguity decisions) on
  /// top of the sub-path cache. The {memo, memo+frontier} ablation legs of
  /// the benches and the frontier differential tests run through this.
  void set_frontier(bool enabled) { config_.use_frontier = enabled; }

  const VerifyConfig& config() const { return config_; }

  /// Issue a fresh challenge (recorded for replay-detection).
  cfa::Challenge fresh_challenge();

  /// Register an externally-issued challenge as outstanding — the
  /// replicated-deployment path where a frontend issues challenges and any
  /// verifier instance may receive the response (also used by the fault
  /// campaign to verify many mutations of one attested run).
  void adopt_challenge(const cfa::Challenge& chal);

  /// Verify a full report chain for `chal`. Total: returns a verdict for
  /// arbitrary input and never throws.
  VerificationResult verify(const cfa::Challenge& chal,
                            const std::vector<cfa::SignedReport>& reports);

 private:
  crypto::HmacKeySchedule key_schedule_;
  Xoshiro256 rng_;
  SessionStore sessions_;  ///< single implicit device (id 0)
  std::shared_ptr<const Deployment> deployment_;
  VerifyConfig config_;
};

}  // namespace raptrack::verify
