// Protocol-level Verifier (Vrf): issues fresh challenges, authenticates the
// (partial + final) report chain, checks H_MEM against the expected deployed
// image, reconstructs the full control-flow path from CF_Log, and applies
// attack-detection policies (shadow call stack, valid indirect-call
// targets). Mirrors the §II-C/§II-D protocol and the §IV-F security
// arguments.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cfa/report.hpp"
#include "cfa/speculation.hpp"
#include "common/rng.hpp"
#include "verify/replayer.hpp"

namespace raptrack::verify {

struct VerificationResult {
  bool authentic = false;       ///< every report MAC valid
  bool fresh = false;           ///< challenge matches, never seen before
  bool chain_ok = false;        ///< sequence numbers contiguous, one final
  bool memory_ok = false;       ///< H_MEM matches the expected image
  bool reconstruction_ok = false;  ///< lossless path replay succeeded
  bool policy_ok = false;       ///< no ROP/JOP findings
  std::string detail;           ///< first failure explanation
  ReplayResult replay;
  ReplayInputs inputs;          ///< decoded evidence (for audits/diagnostics)

  /// The overall verdict: Prv ran the expected code over an admissible path.
  bool accepted() const {
    return authentic && fresh && chain_ok && memory_ok && reconstruction_ok &&
           policy_ok;
  }
};

class Verifier {
 public:
  Verifier(crypto::Key key, u64 rng_seed = 0x5eed'cafe);

  /// Provision the expected RAP-Track deployment (rewritten image +
  /// manifest, as produced by the Verifier-side offline phase).
  void expect_rap(const Program& program, const rewrite::Manifest& manifest,
                  Address entry);
  void expect_naive(const Program& program, Address entry);
  void expect_traces(const Program& program,
                     const instr::TracesManifest& manifest, Address entry);
  void set_policy(ReplayPolicy policy) { policy_ = std::move(policy); }

  /// Provision the SpecCFA-style sub-path dictionary shared with the RoT
  /// (must match the prover's, or speculated payloads fail to decode).
  void set_speculation(const cfa::SpeculationDict* dict) { speculation_ = dict; }

  /// Issue a fresh challenge (recorded for replay-detection).
  cfa::Challenge fresh_challenge();

  /// Verify a full report chain for `chal`.
  VerificationResult verify(const cfa::Challenge& chal,
                            const std::vector<cfa::SignedReport>& reports);

 private:
  crypto::Key key_;
  Xoshiro256 rng_;
  std::vector<cfa::Challenge> outstanding_;
  std::vector<cfa::Challenge> used_;

  std::optional<ReplayMode> mode_;
  const Program* program_ = nullptr;
  const rewrite::Manifest* rap_manifest_ = nullptr;
  const instr::TracesManifest* traces_manifest_ = nullptr;
  Address entry_ = 0;
  crypto::Digest expected_h_mem_{};
  ReplayPolicy policy_;
  const cfa::SpeculationDict* speculation_ = nullptr;
};

}  // namespace raptrack::verify
