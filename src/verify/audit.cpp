#include "verify/audit.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hex.hpp"

namespace raptrack::verify {

namespace {

const char* kind_label(isa::BranchKind kind) {
  switch (kind) {
    case isa::BranchKind::Direct: return "direct";
    case isa::BranchKind::DirectCall: return "call";
    case isa::BranchKind::Conditional: return "conditional";
    case isa::BranchKind::IndirectCall: return "indirect-call";
    case isa::BranchKind::IndirectJump: return "indirect-jump";
    case isa::BranchKind::Return: return "return";
    default: return "other";
  }
}

std::string symbol_for(const Program& program, Address addr) {
  for (const auto& [name, value] : program.symbols()) {
    if (value == addr) return name;
  }
  return "";
}

/// Shared audit core, parameterized over the slot→site reverse lookup:
/// a linear manifest scan for the legacy overload, the Deployment cache's
/// sorted index for the service path. `slot_containing(addr)` returns the
/// SlotRecord covering `addr`, or nullptr (always nullptr when there is no
/// RAP manifest — naive/TRACES deployments audit unmapped).
template <typename SlotLookup>
AuditReport audit_impl(const VerificationResult& result,
                       const Program& program, SlotLookup&& slot_containing,
                       size_t top_edges) {
  AuditReport report;
  report.accepted = result.accepted();
  report.verdict_class = result.verdict;
  report.gaps = result.gaps;
  report.chain_notes = result.chain_notes;
  report.partial_reconstruction = result.partial_reconstruction;
  if (result.accepted()) {
    report.verdict = "ACCEPTED: expected binary, complete benign path";
  } else if (!result.detail.empty()) {
    report.verdict =
        std::string(result.verdict == Verdict::Inconclusive ? "INCONCLUSIVE: "
                                                            : "REJECTED: ") +
        result.detail;
  } else {
    report.verdict = "REJECTED";
  }
  report.findings = result.replay.findings;
  report.evidence_packets = result.inputs.packets.size();
  report.evidence_loop_values = result.inputs.loop_values.size();
  report.total_transfers = result.replay.events.size();

  std::map<Address, FunctionActivity> functions;
  std::map<std::tuple<Address, Address, isa::BranchKind>, u64> edges;

  // Trampoline detours are an implementation artifact: the entry edge into
  // an MTBAR slot is dropped, and the slot's exit edge is reported at the
  // original site with the branch kind the *original* instruction had — the
  // audit speaks original-program addresses and semantics.
  const auto original_site = [&](Address source) -> Address {
    const auto* slot = slot_containing(source);
    return slot != nullptr ? slot->site : source;
  };
  const auto logical_kind = [&](const trace::OracleEvent& event)
      -> isa::BranchKind {
    const auto* slot = slot_containing(event.source);
    if (slot == nullptr) return event.kind;
    switch (slot->kind) {
      case rewrite::SlotKind::IndirectCall: return isa::BranchKind::IndirectCall;
      case rewrite::SlotKind::IndirectJump: return isa::BranchKind::IndirectJump;
      case rewrite::SlotKind::ReturnPop: return isa::BranchKind::Return;
      case rewrite::SlotKind::CondTaken:
      case rewrite::SlotKind::CondNotTaken:
        return isa::BranchKind::Conditional;
    }
    return event.kind;
  };

  for (const auto& event : result.replay.events) {
    if (slot_containing(event.destination) != nullptr) {
      continue;  // detour entry
    }
    const isa::BranchKind kind = logical_kind(event);
    ++report.transfers_by_kind[kind_label(kind)];
    const Address site = original_site(event.source);
    ++edges[{site, event.destination, kind}];

    if (kind == isa::BranchKind::DirectCall ||
        kind == isa::BranchKind::IndirectCall) {
      auto& fn = functions[event.destination];
      fn.entry = event.destination;
      ++fn.calls;
    } else if (kind == isa::BranchKind::Return) {
      // Attribute the return to the function containing the return site —
      // approximated by the nearest preceding call target.
      auto it = functions.upper_bound(site);
      if (it != functions.begin()) {
        --it;
        if (site >= it->first) ++it->second.returns;
      }
    }
  }

  for (auto& [entry, fn] : functions) {
    fn.label = symbol_for(program, entry);
    report.functions.push_back(fn);
  }
  std::sort(report.functions.begin(), report.functions.end(),
            [](const auto& a, const auto& b) { return a.calls > b.calls; });

  for (const auto& [key, count] : edges) {
    report.hottest_edges.push_back(
        {std::get<0>(key), std::get<1>(key), std::get<2>(key), count});
  }
  std::sort(report.hottest_edges.begin(), report.hottest_edges.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  if (report.hottest_edges.size() > top_edges) {
    report.hottest_edges.resize(top_edges);
  }
  return report;
}

}  // namespace

AuditReport audit_verification(const VerificationResult& result,
                               const Program& program,
                               const rewrite::Manifest* manifest,
                               size_t top_edges) {
  return audit_impl(
      result, program,
      [manifest](Address addr) -> const rewrite::SlotRecord* {
        return manifest != nullptr ? manifest->slot_containing(addr) : nullptr;
      },
      top_edges);
}

AuditReport audit_verification(const VerificationResult& result,
                               const Deployment& deployment,
                               size_t top_edges) {
  return audit_impl(
      result, deployment.program(),
      [&index = deployment.index()](Address addr) {
        return index.slot_containing(addr);
      },
      top_edges);
}

std::string format_audit(const AuditReport& report) {
  std::string out;
  char buf[160];
  const auto emit = [&](const char* text) {
    out += text;
    out += '\n';
  };

  emit("=== CFA audit report ===");
  std::snprintf(buf, sizeof buf, "verdict: %s", report.verdict.c_str());
  emit(buf);
  if (!report.gaps.empty()) {
    emit("chain gaps:");
    for (const auto& gap : report.gaps) {
      std::snprintf(buf, sizeof buf, "  reports %u..%u never arrived",
                    gap.first_missing,
                    gap.first_missing + gap.missing_count - 1);
      emit(buf);
    }
  }
  for (const auto& note : report.chain_notes) {
    std::snprintf(buf, sizeof buf, "note: %s", note.c_str());
    emit(buf);
  }
  if (report.partial_reconstruction) {
    emit("partial reconstruction of the surviving chain prefix follows");
  }
  std::snprintf(buf, sizeof buf,
                "evidence: %llu MTB packets, %llu loop-condition values",
                (unsigned long long)report.evidence_packets,
                (unsigned long long)report.evidence_loop_values);
  emit(buf);
  std::snprintf(buf, sizeof buf, "reconstructed transfers: %llu",
                (unsigned long long)report.total_transfers);
  emit(buf);
  for (const auto& [kind, count] : report.transfers_by_kind) {
    std::snprintf(buf, sizeof buf, "  %-14s %llu", kind.c_str(),
                  (unsigned long long)count);
    emit(buf);
  }
  if (!report.functions.empty()) {
    emit("functions (by call count):");
    for (const auto& fn : report.functions) {
      std::snprintf(buf, sizeof buf, "  %s %-16s calls=%llu returns=%llu",
                    hex32(fn.entry).c_str(),
                    fn.label.empty() ? "<anon>" : fn.label.c_str(),
                    (unsigned long long)fn.calls,
                    (unsigned long long)fn.returns);
      emit(buf);
    }
  }
  if (!report.hottest_edges.empty()) {
    emit("hottest edges:");
    for (const auto& edge : report.hottest_edges) {
      std::snprintf(buf, sizeof buf, "  %s -> %s  %-13s x%llu",
                    hex32(edge.source).c_str(),
                    hex32(edge.destination).c_str(), kind_label(edge.kind),
                    (unsigned long long)edge.count);
      emit(buf);
    }
  }
  if (!report.findings.empty()) {
    emit("findings:");
    for (const auto& finding : report.findings) {
      std::snprintf(buf, sizeof buf, "  at %s: %s",
                    hex32(finding.site).c_str(), finding.description.c_str());
      emit(buf);
    }
  }
  return out;
}

}  // namespace raptrack::verify
