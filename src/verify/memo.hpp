// Verified sub-path memo cache: skip re-simulating control-flow segments the
// deployment has already replayed and validated.
//
// MCU attestation traffic is dominated by repetition — every loop iteration,
// every hot call path, and (for a fleet) every device running the same
// firmware produces near-identical CF_Log windows. The replay engine
// therefore memoizes *segments*: checkpoint-free, finding-free stretches of
// its own execution, keyed by everything the stretch's behavior depends on
// and valued by everything the stretch changes. On a later replay whose
// state and evidence window match a stored segment exactly, the engine
// splices the recorded effects (events, cursor advances, valuation, shadow
// stack, step counters) and jumps straight to the exit state.
//
// Soundness rests on the engine's own determinism argument (the one that
// justifies its backtracking failure memo): between checkpoints, every
// decision is a pure function of (pc, valuation, shadow-stack top, the
// evidence actually consumed or peeked, the immutable ReplayIndex, and the
// call-target policy). A segment's key captures precisely that footprint —
// consumed evidence is compared byte-for-byte, the one-packet lookahead the
// decision logic may have peeked is pinned, and anything outside the
// footprint (ambiguous RAP decisions, backtracking, findings, forced
// decisions) aborts recording instead of being approximated. Memoization
// may therefore change only wall-clock time and the memo_hits/memo_misses
// telemetry — never a verdict, event, finding, or counter. tests/test_memo
// enforces that bit-for-bit against the unmemoized engine.
//
// The cache lives on the Deployment (one per expected image) and is shared
// by the serial Verifier and every VerifierFarm worker: sharded
// open-addressed tables under per-shard mutexes, entries held as
// shared_ptr<const MemoSegment> so a hit copies a pointer under the lock
// and validates outside it. Memory is bounded per shard; insertion evicts
// least-recently-used entries within the probe window (and clock-sweeps the
// shard when the byte budget overflows).
//
// Compile-time gate: `RAP_MEMO_ENABLED` (CMake option RAP_MEMO, default ON)
// mirrors RAP_OBS. When OFF, lookup/insert collapse to no-ops, kMemoEnabled
// is false, and verify_report_chain never attaches the cache — the engine
// runs exactly the pre-memo code path.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "trace/branch_packet.hpp"
#include "trace/trace_fabric.hpp"

#ifndef RAP_MEMO_ENABLED
#define RAP_MEMO_ENABLED 1
#endif

namespace raptrack::verify {

#if RAP_MEMO_ENABLED
inline constexpr bool kMemoEnabled = true;
#else
inline constexpr bool kMemoEnabled = false;
#endif

/// Packed snapshot of the replay engine's constant-propagating valuation:
/// sixteen optional registers (known mask + values) and the four optional
/// NZCV flags (low nibble = values, high nibble = known). Exact equality of
/// two snapshots means the engines would make identical flag/register
/// decisions.
struct MemoValuation {
  std::array<u32, 16> regs{};
  u16 known = 0;  ///< bit i set when regs[i] holds a known value
  u8 flags = 0;   ///< bits 0-3 NZCV values, bits 4-7 NZCV known

  u64 hash() const;

  friend bool operator==(const MemoValuation&, const MemoValuation&) = default;
};

/// One frontier-guarded decision absorbed into a recorded segment: at this
/// point inside the segment (cursor/step deltas are relative to the segment
/// entry), the engine took `decision` because a resident frontier entry
/// covered the exact total state. The segment may only splice when an
/// equivalent entry still covers the live state — splice-time re-validation
/// rebuilds the frontier guards from the live chain (stack prefix below the
/// anchor comes from the live stack, the recorded suffix above it from the
/// guard) and requires a resident decision entry with the same decision and
/// at least the dead-branch knowledge recorded here.
struct SegmentGuard {
  Address pc = 0;     ///< the ambiguous site the decision was taken at
  MemoValuation val;  ///< packed valuation at the site
  u32 d_packets = 0;  ///< evidence-cursor deltas vs. the segment entry
  u32 d_loops = 0;
  u32 d_bits = 0;
  u32 d_targets = 0;
  /// Shadow-stack shape at the site: `pops` entries of the anchor stack had
  /// been consumed (a prefix of MemoSegment::popped), and `suffix` (bottom
  /// first) sat above that point. The guard-time stack is therefore
  /// live_stack[0 .. L-pops) ++ suffix for a live stack of depth L.
  u32 pops = 0;
  std::vector<Address> suffix;
  bool decision = false;  ///< the frontier-recorded decision taken
  u8 failed_mask = 0;     ///< dead-branch bits the entry carried at the time
  u64 steps_delta = 0;    ///< steps from segment entry to the site
  friend bool operator==(const SegmentGuard&, const SegmentGuard&) = default;
};

/// One memoized segment: the exact-match entry guards (key side) and the
/// recorded effects to splice on a hit (value side). Immutable once
/// inserted; shared across threads by const pointer.
struct MemoSegment {
  // -- key side: the segment applies only when ALL of these match ----------
  Address entry_pc = 0;
  MemoValuation entry_val;
  u64 policy_hash = 0;  ///< call-target policy fingerprint (affects findings)
  /// Shadow-stack entries the segment consumes, top-of-stack first.
  std::vector<Address> popped;
  /// Evidence consumed during the segment, compared byte-for-byte against
  /// the live streams at the current cursors.
  std::vector<trace::BranchPacket> packets;
  std::vector<u32> loop_values;      ///< RAP or TRACES loop stream (per mode)
  std::vector<u8> direction_bits;    ///< TRACES direction bits (0/1)
  std::vector<Address> indirect_targets;
  /// The engine peeked one packet past the consumed window (conditional
  /// decisions look ahead without consuming); the live stream must hold the
  /// same packet there.
  bool peeked_next = false;
  trace::BranchPacket peeked{};
  /// The engine observed end-of-log just past the window (a peek that found
  /// the stream exhausted); the live stream must end there too.
  bool eos_observed = false;
  /// Segment ends at a clean halt: every evidence stream must be *exactly*
  /// exhausted by the window, and applying it completes the replay.
  bool halted = false;
  /// Frontier-guarded decisions the recording absorbed instead of aborting
  /// at a RAP-ambiguous site. Empty for ordinary segments. Non-empty guards
  /// are re-validated against the live frontier on every splice attempt; a
  /// detached engine (frontier off) never splices a guarded segment.
  std::vector<SegmentGuard> guards;

  // -- value side: effects spliced into the engine on a hit ----------------
  Address exit_pc = 0;
  MemoValuation exit_val;
  /// Shadow-stack entries live above the popped point at exit, bottom first.
  std::vector<Address> pushed;
  std::vector<trace::OracleEvent> events;
  u64 steps = 0;
  u64 index_hits = 0;
  u64 index_fallbacks = 0;

  /// Approximate heap footprint, for the shard byte budget.
  size_t bytes() const;
  /// Same entry guards as `other` (used to refresh instead of duplicate when
  /// two workers record the same segment concurrently).
  bool same_entry(const MemoSegment& other) const;
};

/// One frontier-memo entry: a resolved RAP-ambiguity decision, promoted from
/// a single replay's backtracking search to the shared Deployment cache.
///
/// The guards fingerprint the engine's *total* state at the ambiguous site —
/// pc, packed valuation, policy, strictness, the full shadow stack (hashed),
/// and the entire remaining evidence suffix of all four streams (hashed, plus
/// exact remaining counts). Because the engine is deterministic given state +
/// evidence, a guard match means the search from this state will unfold
/// exactly as it did before: a recorded known-good decision completes the
/// replay without saving a checkpoint, and a recorded failed direction is a
/// dead branch that need not be re-explored. 64-bit fingerprints admit an
/// astronomically unlikely collision; the replayer covers even that by
/// re-running any *failing* replay with the frontier detached (see
/// replayer.cpp), so a collision can cost time, never a verdict.
struct FrontierEntry {
  // -- guards: the entry applies only when ALL of these match --------------
  Address pc = 0;
  MemoValuation val;
  u64 policy_hash = 0;
  bool strict = false;
  u64 stack_hash = 0;     ///< hash over the full shadow stack, bottom-up
  u64 evidence_fp = 0;    ///< hash over the remaining suffix of all streams
  u32 packet_rem = 0;     ///< packets remaining at the site
  u32 loop_rem = 0;       ///< loop values remaining
  u32 bit_rem = 0;        ///< direction bits remaining
  u32 target_rem = 0;     ///< indirect targets remaining

  // -- value: what the search learned from this state ----------------------
  /// bit 0: decision `false` is known to fail; bit 1: decision `true` fails.
  u8 failed_mask = 0;
  /// A decision from this state that led to a complete, consistent parse.
  bool has_decision = false;
  bool decision = false;
  /// Steps the accepted path took from this site to the clean halt — used to
  /// honor the caller's step budget before skipping the checkpoint.
  u64 steps_to_complete = 0;

  u64 key_hash() const;
  bool same_guards(const FrontierEntry& other) const;
};

struct MemoOptions {
  /// Shard count (lock granularity). Power of two.
  size_t shards = 16;
  /// Open-addressed slots per shard.
  size_t slots_per_shard = 2048;
  /// Frontier-memo slots per shard. Entries are small and fixed-size
  /// (~200 B), so the default table costs ~800 KiB per shard fully loaded —
  /// still charged against `budget_bytes`, with its own eviction clock.
  size_t frontier_slots_per_shard = 4096;
  /// Entries (per tier, by hit count) serialized into a MEM1 warm-start
  /// section. Bounds snapshot size; 0 disables the section payload.
  size_t snapshot_top_k = 4096;
  /// Byte budget across the whole cache (split evenly over shards).
  /// Entries larger than one shard's budget are rejected outright.
  size_t budget_bytes = size_t{48} << 20;
  /// Segment length: packets consumed before the recorder closes a segment
  /// and anchors the next one. Matches the per-report chunk size at the
  /// default 128-byte watermark (16 packets), so whole repeated reports
  /// memoize as chains of window hits.
  u32 window_packets = 16;
  /// Futility-backoff ceiling, in replay steps. Consecutive anchors that
  /// neither hit the cache nor store a segment double a delay before the
  /// next anchor attempt, up to this cap — checkpoint-dense RAP ambiguity
  /// search aborts recording every few steps, and without backoff each
  /// re-anchor pays a full pack+hash+lookup for a near-certain miss. Any
  /// hit or stored segment resets the delay. 0 disables backoff (anchor on
  /// every opportunity); the differential tests use that to force dense
  /// cache traffic on RAP chains.
  u32 anchor_backoff_cap = 512;
  /// Frontier-aware segment recording: when a RAP-ambiguous site resolves
  /// through a frontier decision hit, the in-flight recording absorbs the
  /// decision as a SegmentGuard and keeps going instead of aborting. Off
  /// restores the PR-7 rule (any ambiguity aborts recording) — the §14 tier
  /// then stays dead on checkpoint-dense chains. Ablation switch; results
  /// are bit-identical either way.
  bool guarded_segments = true;
};

/// Point-in-time cache statistics (relaxed-atomic reads; exact only when
/// quiescent).
struct MemoStats {
  u64 hits = 0;        ///< segments applied by some engine
  u64 misses = 0;      ///< lookups that applied nothing
  u64 inserts = 0;     ///< segments stored
  u64 evictions = 0;   ///< segments displaced (LRU or budget sweep)
  u64 rejects = 0;     ///< inserts refused (entry larger than a shard budget)
  u64 bytes = 0;       ///< current resident bytes (segments + frontier)
  u64 entries = 0;     ///< current resident segment count

  u64 frontier_hits = 0;      ///< frontier lookups whose guards matched
  u64 frontier_misses = 0;    ///< frontier lookups that found nothing
  u64 frontier_inserts = 0;   ///< frontier entries stored or merged
  u64 frontier_entries = 0;   ///< current resident frontier entries

  u64 prefetch_hits = 0;      ///< prefetch calls that found >=1 resident entry
  u64 prefetch_warmed = 0;    ///< entries re-touched resident by prefetch

  double hit_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  double frontier_hit_rate() const {
    const u64 total = frontier_hits + frontier_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(frontier_hits) / static_cast<double>(total);
  }
};

class MemoCache {
 public:
  using Handle = std::shared_ptr<const MemoSegment>;

  /// Most candidates one lookup returns (same key hash, different guards —
  /// e.g. divergent chains sharing an entry state).
  static constexpr size_t kLookupWidth = 4;

  explicit MemoCache(MemoOptions options = {});

  /// Copy up to `max` candidate handles whose key hash matches into `out`.
  /// Returns the count. The caller re-validates the full entry guards;
  /// a returned candidate is a *candidate*, not a hit.
  size_t lookup(u64 key, Handle* out, size_t max) const;

  /// Store a segment under its key hash. Duplicate-guard entries refresh in
  /// place; otherwise an empty or least-recently-used slot in the probe
  /// window takes it, and the shard clock-sweeps down to its byte budget.
  void insert(u64 key, Handle segment);

  /// Applied-hit / no-applicable-entry accounting, reported by the engines
  /// (a lookup alone cannot tell whether a candidate survives its guards).
  void note_hit() const;
  void note_miss() const;

  // -- frontier tier --------------------------------------------------------

  /// Find the frontier entry whose guards exactly match `guards` and copy it
  /// into `out`. Returns true on a guard match (counted as a frontier hit).
  bool frontier_lookup(const FrontierEntry& guards, FrontierEntry* out) const;

  /// Store a resolved-ambiguity entry. A guard-matching resident entry
  /// *merges* instead of duplicating: failed bits OR together and a recorded
  /// decision fills in if absent, so concurrent workers pool what each
  /// replay's search learned. Charged against the shared byte budget with a
  /// frontier-local eviction clock.
  void frontier_insert(const FrontierEntry& entry);

  // -- whole-chain fingerprint cache ----------------------------------------

  /// Cross-call cache of the whole-chain evidence fingerprint, keyed by a
  /// caller-computed chain identity hash (challenge + report MACs — already
  /// authenticated, so the key pins the evidence content). Repeated
  /// verifications of an identical chain (farm retries, re-deliveries) seed
  /// PathReplayer::seed_chain_fingerprint from here and skip the full-stream
  /// hash pass. Fixed-size set-associative table (see ChainFpSlot below);
  /// a full set displaces its least-recently-used entry and bumps the
  /// verify.memo.fingerprint.evicted counter.
  bool chain_fp_lookup(u64 key, u64* fp) const;
  void chain_fp_store(u64 key, u64 fp);

  // -- cross-session prefetch -----------------------------------------------

  /// Tag `device` with the cache keys its just-completed session touched.
  /// Later prefetch(device) re-touches them so tick-LRU keeps them resident
  /// across other devices' traffic. Key lists are deduplicated and capped;
  /// the device table itself is capped with oldest-tag eviction.
  void note_session(u64 device, std::span<const u64> segment_keys,
                    std::span<const u64> frontier_keys);

  /// Pre-touch the entries tagged for `device` (both tiers). Returns the
  /// number of still-resident entries warmed. Obs counters
  /// verify.memo.prefetch.{hits,warmed}.
  size_t prefetch(u64 device);

  // -- persistent warm start (MEM1) -----------------------------------------

  /// Serialize the top-K entries of each tier (by hit count) plus the device
  /// prefetch tags into a standalone, versioned, CRC-protected MEM1 blob.
  std::vector<u8> serialize_warm() const;

  /// Restore a MEM1 blob produced by serialize_warm. All-or-nothing: returns
  /// false (cache untouched — cold, never wrong) on any malformation,
  /// truncation, or checksum mismatch. On success the restored entries are
  /// inserted hot, as if just recorded.
  bool restore_warm(std::span<const u8> blob);

  /// Drop every entry and reset statistics (bench/test isolation).
  void clear();

  MemoStats stats() const;
  const MemoOptions& options() const { return options_; }

  /// Global kill switch for differential tests that cannot reach every
  /// internally-constructed Verifier: while disabled, lookup returns
  /// nothing and insert drops. Flip only from single-threaded test setup.
  static void force_disable(bool disable);

 private:
  struct Slot {
    u64 key = 0;
    u64 tick = 0;  ///< last touch (shard-local logical clock)
    u64 hits = 0;  ///< lifetime candidate returns (MEM1 top-K ranking)
    Handle segment;
  };
  struct FrontierSlot {
    u64 key = 0;
    u64 tick = 0;  ///< frontier-local eviction clock
    u64 hits = 0;
    bool used = false;
    FrontierEntry entry;
  };

 public:
  /// Budget charge for one resident frontier entry: the full inline slot
  /// footprint, so the byte budget never undercounts the tier.
  static constexpr size_t kFrontierEntryBytes = sizeof(FrontierSlot);

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;
    std::vector<FrontierSlot> fslots;
    size_t bytes = 0;      ///< segment + frontier bytes, against shard budget
    size_t fcount = 0;     ///< resident frontier entries
    u64 tick = 0;
    u64 ftick = 0;
    size_t sweep_hand = 0;
    size_t fsweep_hand = 0;
  };
  /// Per-device prefetch tags from the most recent completed session.
  struct DeviceTags {
    std::vector<u64> segment_keys;
    std::vector<u64> frontier_keys;
    u64 stamp = 0;  ///< insertion order, for oldest-tag eviction
  };

  Shard& shard_for(u64 key) const { return shards_[key & shard_mask_]; }
  /// Touch a key in both tiers of its shard; returns entries found resident.
  size_t touch_key(u64 key, bool frontier);
  /// Clock-sweep `shard` down to the byte budget without evicting the
  /// protected fresh entry (`keep_slot`/`keep_fslot`). Sweeps the segment
  /// tier, then the frontier tier; each scan is bounded by its slot count,
  /// so the sweep terminates (and the budget invariant holds) even when one
  /// tier alone cannot free enough. Caller holds the shard mutex. Returns
  /// entries evicted.
  u64 sweep_to_budget(Shard& shard, const Slot* keep_slot,
                      const FrontierSlot* keep_fslot);

  MemoOptions options_;
  size_t shard_mask_ = 0;
  size_t shard_budget_ = 0;
  mutable std::vector<Shard> shards_;

  mutable std::mutex device_mu_;
  std::unordered_map<u64, DeviceTags> device_tags_;
  u64 device_stamp_ = 0;

  /// Set-associative whole-chain fingerprint cache (chain_fp_lookup/store):
  /// kChainFpSets sets x kChainFpWays ways with per-slot LRU ticks, laid
  /// out set-major in one flat array. Direct mapping lost fingerprints to
  /// same-set collisions at fleet scale; with 4 ways a set only starts
  /// displacing live keys when >4 concurrently live chains alias one set,
  /// and every displacement is counted (verify.memo.fingerprint.evicted).
  struct ChainFpSlot {
    u64 key = 0;
    u64 fp = 0;
    u64 tick = 0;  ///< LRU: bumped on hit/refresh under chain_fp_mu_
    bool valid = false;
  };
  static constexpr size_t kChainFpSets = 64;
  static constexpr size_t kChainFpWays = 4;
  mutable std::mutex chain_fp_mu_;
  mutable std::array<ChainFpSlot, kChainFpSets * kChainFpWays> chain_fp_slots_{};
  mutable u64 chain_fp_tick_ = 0;

  mutable std::atomic<u64> hits_{0};
  mutable std::atomic<u64> misses_{0};
  std::atomic<u64> inserts_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<u64> rejects_{0};
  std::atomic<u64> bytes_{0};
  std::atomic<u64> entries_{0};
  mutable std::atomic<u64> frontier_hits_{0};
  mutable std::atomic<u64> frontier_misses_{0};
  std::atomic<u64> frontier_inserts_{0};
  std::atomic<u64> frontier_entries_{0};
  std::atomic<u64> prefetch_hits_{0};
  std::atomic<u64> prefetch_warmed_{0};
};

}  // namespace raptrack::verify
