#include "verify/memo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace raptrack::verify {

namespace {

/// Linear-probe window per lookup/insert: long enough to tolerate key-hash
/// clusters, short enough that a shard operation stays a handful of cache
/// lines under the lock.
constexpr size_t kProbe = 8;

size_t probe_base(u64 key, size_t slots) {
  // Shard selection consumed the low bits; probe placement uses the rest.
  return static_cast<size_t>(key >> 16) % slots;
}

// Test kill switch (see MemoCache::force_disable): plain bool, flipped only
// from single-threaded test setup — same discipline as Sha256::force_scalar.
bool g_memo_disabled = false;

// Cache-wide metric handles, registered once (map find under the registry
// mutex otherwise — this sits on the replay hot path).
struct MemoObsMetrics {
  obs::Counter hits = obs::registry().counter("verify.memo.hits");
  obs::Counter misses = obs::registry().counter("verify.memo.misses");
  obs::Counter inserts = obs::registry().counter("verify.memo.inserts");
  obs::Counter evictions = obs::registry().counter("verify.memo.evictions");
  obs::Gauge bytes_hwm = obs::registry().gauge("verify.memo.bytes_hwm");

  static MemoObsMetrics& get() {
    static MemoObsMetrics metrics;
    return metrics;
  }
};

}  // namespace

u64 MemoValuation::hash() const {
  u64 h = 0x243f6a8885a308d3ull;
  const auto mix = [&h](u64 v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const u32 reg : regs) mix(reg);
  mix(known);
  mix(flags);
  return h;
}

size_t MemoSegment::bytes() const {
  return sizeof(MemoSegment) + popped.capacity() * sizeof(Address) +
         packets.capacity() * sizeof(trace::BranchPacket) +
         loop_values.capacity() * sizeof(u32) +
         direction_bits.capacity() * sizeof(u8) +
         indirect_targets.capacity() * sizeof(Address) +
         pushed.capacity() * sizeof(Address) +
         events.capacity() * sizeof(trace::OracleEvent);
}

bool MemoSegment::same_entry(const MemoSegment& other) const {
  return entry_pc == other.entry_pc && entry_val == other.entry_val &&
         policy_hash == other.policy_hash && popped == other.popped &&
         packets == other.packets && loop_values == other.loop_values &&
         direction_bits == other.direction_bits &&
         indirect_targets == other.indirect_targets &&
         peeked_next == other.peeked_next &&
         (!peeked_next || peeked == other.peeked) &&
         eos_observed == other.eos_observed && halted == other.halted;
}

MemoCache::MemoCache(MemoOptions options) : options_(options) {
  size_t shard_count = options_.shards == 0 ? 1 : options_.shards;
  // Round up to a power of two so shard_for can mask.
  while ((shard_count & (shard_count - 1)) != 0) ++shard_count;
  options_.shards = shard_count;
  shard_mask_ = shard_count - 1;
  shard_budget_ = std::max<size_t>(1, options_.budget_bytes / shard_count);
  shards_ = std::vector<Shard>(shard_count);
  const size_t slots = std::max<size_t>(kProbe, options_.slots_per_shard);
  for (Shard& shard : shards_) shard.slots.resize(slots);
}

size_t MemoCache::lookup(u64 key, Handle* out, size_t max) const {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled || max == 0) return 0;
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  const size_t base = probe_base(key, shard.slots.size());
  size_t found = 0;
  for (size_t i = 0; i < kProbe && found < max; ++i) {
    Slot& slot = shard.slots[(base + i) % shard.slots.size()];
    if (slot.segment != nullptr && slot.key == key) {
      slot.tick = ++shard.tick;  // touch for window-local LRU
      out[found++] = slot.segment;
    }
  }
  return found;
#else
  (void)key;
  (void)out;
  (void)max;
  return 0;
#endif
}

void MemoCache::insert(u64 key, Handle segment) {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled || segment == nullptr) return;
  const size_t size = segment->bytes();
  if (size > shard_budget_) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shard_for(key);
  u64 evicted = 0;
  {
    std::lock_guard lock(shard.mu);
    const size_t base = probe_base(key, shard.slots.size());
    Slot* match = nullptr;
    Slot* empty = nullptr;
    Slot* lru = nullptr;
    for (size_t i = 0; i < kProbe; ++i) {
      Slot& slot = shard.slots[(base + i) % shard.slots.size()];
      if (slot.segment == nullptr) {
        if (empty == nullptr) empty = &slot;
      } else if (slot.key == key && slot.segment->same_entry(*segment)) {
        match = &slot;
        break;
      } else if (lru == nullptr || slot.tick < lru->tick) {
        lru = &slot;
      }
    }
    Slot* dest = match != nullptr ? match : (empty != nullptr ? empty : lru);
    if (dest->segment != nullptr) {
      shard.bytes -= dest->segment->bytes();
      bytes_.fetch_sub(dest->segment->bytes(), std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      if (match == nullptr) ++evicted;
    }
    dest->key = key;
    dest->segment = std::move(segment);
    dest->tick = ++shard.tick;
    shard.bytes += size;
    bytes_.fetch_add(size, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    // Budget overflow: clock-sweep the shard, skipping the fresh entry.
    // Terminates because the fresh entry alone fits the shard budget.
    while (shard.bytes > shard_budget_) {
      Slot& victim = shard.slots[shard.sweep_hand++ % shard.slots.size()];
      if (&victim == dest || victim.segment == nullptr) continue;
      shard.bytes -= victim.segment->bytes();
      bytes_.fetch_sub(victim.segment->bytes(), std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      victim.segment.reset();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    auto& metrics = MemoObsMetrics::get();
    metrics.inserts.inc();
    if (evicted != 0) metrics.evictions.inc(evicted);
    metrics.bytes_hwm.set_max(bytes_.load(std::memory_order_relaxed));
  }
#else
  (void)key;
  (void)segment;
#endif
}

void MemoCache::note_hit() const {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) MemoObsMetrics::get().hits.inc();
}

void MemoCache::note_miss() const {
  misses_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) MemoObsMetrics::get().misses.inc();
}

void MemoCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (Slot& slot : shard.slots) {
      slot.key = 0;
      slot.tick = 0;
      slot.segment.reset();
    }
    shard.bytes = 0;
    shard.tick = 0;
    shard.sweep_hand = 0;
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  rejects_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
}

MemoStats MemoCache::stats() const {
  MemoStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejects = rejects_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

void MemoCache::force_disable(bool disable) { g_memo_disabled = disable; }

}  // namespace raptrack::verify
