#include "verify/memo.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"
#include "obs/metrics.hpp"

namespace raptrack::verify {

namespace {

/// Linear-probe window per lookup/insert: long enough to tolerate key-hash
/// clusters, short enough that a shard operation stays a handful of cache
/// lines under the lock.
constexpr size_t kProbe = 8;

size_t probe_base(u64 key, size_t slots) {
  // Shard selection consumed the low bits; probe placement uses the rest.
  return static_cast<size_t>(key >> 16) % slots;
}

// Test kill switch (see MemoCache::force_disable): plain bool, flipped only
// from single-threaded test setup — same discipline as Sha256::force_scalar.
bool g_memo_disabled = false;

// Cache-wide metric handles, registered once (map find under the registry
// mutex otherwise — this sits on the replay hot path).
struct MemoObsMetrics {
  obs::Counter hits = obs::registry().counter("verify.memo.hits");
  obs::Counter misses = obs::registry().counter("verify.memo.misses");
  obs::Counter inserts = obs::registry().counter("verify.memo.inserts");
  obs::Counter evictions = obs::registry().counter("verify.memo.evictions");
  obs::Gauge bytes_hwm = obs::registry().gauge("verify.memo.bytes_hwm");
  obs::Counter frontier_hits =
      obs::registry().counter("verify.memo.frontier.hits");
  obs::Counter frontier_misses =
      obs::registry().counter("verify.memo.frontier.misses");
  obs::Counter frontier_inserts =
      obs::registry().counter("verify.memo.frontier.inserts");
  obs::Counter prefetch_hits =
      obs::registry().counter("verify.memo.prefetch.hits");
  obs::Counter prefetch_warmed =
      obs::registry().counter("verify.memo.prefetch.warmed");
  /// A live chain-fingerprint entry was displaced by a different key (its
  /// set was full). Fleet-sized runs watch this to size kChainFpSets.
  obs::Counter fingerprint_evicted =
      obs::registry().counter("verify.memo.fingerprint.evicted");

  static MemoObsMetrics& get() {
    static MemoObsMetrics metrics;
    return metrics;
  }
};

/// Caps for the cross-session prefetch tag table: keys per tier per device,
/// and tagged devices overall (oldest tag evicted beyond that).
constexpr size_t kMaxPrefetchKeys = 256;
constexpr size_t kMaxPrefetchDevices = 1024;

// ---- MEM1 warm-start codec helpers ----------------------------------------

constexpr std::array<u8, 4> kMemMagic = {'M', 'E', 'M', '1'};
/// v2 appended the per-segment guard list (frontier-guarded recording). v1
/// blobs are rejected wholesale — a cold start, never a stale-guard splice.
constexpr u32 kMemVersion = 2;

void put_u8(std::vector<u8>& out, u8 v) { out.push_back(v); }

void put_u32(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 24));
}

void put_u64(std::vector<u8>& out, u64 v) {
  put_u32(out, static_cast<u32>(v));
  put_u32(out, static_cast<u32>(v >> 32));
}

/// Bounds-checked little-endian reader; any out-of-range read latches
/// `ok = false` and returns zeros, so parse code can read linearly and check
/// once at the end.
struct MemReader {
  std::span<const u8> data;
  size_t pos = 0;
  bool ok = true;

  u8 u8_value() {
    if (pos + 1 > data.size()) { ok = false; return 0; }
    return data[pos++];
  }
  u32 u32_value() {
    if (pos + 4 > data.size()) { ok = false; return 0; }
    u32 v = static_cast<u32>(data[pos]) | (static_cast<u32>(data[pos + 1]) << 8) |
            (static_cast<u32>(data[pos + 2]) << 16) |
            (static_cast<u32>(data[pos + 3]) << 24);
    pos += 4;
    return v;
  }
  u64 u64_value() {
    const u64 lo = u32_value();
    const u64 hi = u32_value();
    return lo | (hi << 32);
  }
  /// Would `count` elements of `elem_bytes` each still fit? Guards vector
  /// reserves against forged counts before element-wise reads run.
  bool fits(u64 count, size_t elem_bytes) {
    if (!ok) return false;
    const u64 remaining = data.size() - pos;
    if (count > remaining / (elem_bytes == 0 ? 1 : elem_bytes)) ok = false;
    return ok;
  }
  bool done() const { return ok && pos == data.size(); }
};

void put_valuation(std::vector<u8>& out, const MemoValuation& val) {
  for (const u32 reg : val.regs) put_u32(out, reg);
  put_u32(out, val.known);
  put_u32(out, val.flags);
}

MemoValuation read_valuation(MemReader& r) {
  MemoValuation val;
  for (u32& reg : val.regs) reg = r.u32_value();
  val.known = static_cast<u16>(r.u32_value());
  val.flags = static_cast<u8>(r.u32_value());
  return val;
}

void put_packet(std::vector<u8>& out, const trace::BranchPacket& pkt) {
  put_u32(out, pkt.source_word());
  put_u32(out, pkt.destination_word());
}

trace::BranchPacket read_packet(MemReader& r) {
  const u32 src = r.u32_value();
  const u32 dst = r.u32_value();
  return trace::BranchPacket::from_words(src, dst);
}

void put_segment(std::vector<u8>& out, const MemoSegment& seg) {
  put_u32(out, seg.entry_pc);
  put_valuation(out, seg.entry_val);
  put_u64(out, seg.policy_hash);
  put_u32(out, static_cast<u32>(seg.popped.size()));
  for (const Address a : seg.popped) put_u32(out, a);
  put_u32(out, static_cast<u32>(seg.packets.size()));
  for (const auto& pkt : seg.packets) put_packet(out, pkt);
  put_u32(out, static_cast<u32>(seg.loop_values.size()));
  for (const u32 v : seg.loop_values) put_u32(out, v);
  put_u32(out, static_cast<u32>(seg.direction_bits.size()));
  out.insert(out.end(), seg.direction_bits.begin(), seg.direction_bits.end());
  put_u32(out, static_cast<u32>(seg.indirect_targets.size()));
  for (const Address a : seg.indirect_targets) put_u32(out, a);
  put_u8(out, seg.peeked_next ? 1 : 0);
  put_packet(out, seg.peeked);
  put_u8(out, seg.eos_observed ? 1 : 0);
  put_u8(out, seg.halted ? 1 : 0);
  put_u32(out, seg.exit_pc);
  put_valuation(out, seg.exit_val);
  put_u32(out, static_cast<u32>(seg.pushed.size()));
  for (const Address a : seg.pushed) put_u32(out, a);
  put_u32(out, static_cast<u32>(seg.events.size()));
  for (const auto& ev : seg.events) {
    put_u32(out, ev.source);
    put_u32(out, ev.destination);
    put_u8(out, static_cast<u8>(ev.kind));
  }
  put_u64(out, seg.steps);
  put_u64(out, seg.index_hits);
  put_u64(out, seg.index_fallbacks);
  put_u32(out, static_cast<u32>(seg.guards.size()));
  for (const SegmentGuard& g : seg.guards) {
    put_u32(out, g.pc);
    put_valuation(out, g.val);
    put_u32(out, g.d_packets);
    put_u32(out, g.d_loops);
    put_u32(out, g.d_bits);
    put_u32(out, g.d_targets);
    put_u32(out, g.pops);
    put_u32(out, static_cast<u32>(g.suffix.size()));
    for (const Address a : g.suffix) put_u32(out, a);
    put_u8(out, g.decision ? 1 : 0);
    put_u8(out, g.failed_mask);
    put_u64(out, g.steps_delta);
  }
}

/// Minimum serialized footprint of one guard (empty suffix): pc + valuation
/// + four deltas + pops + suffix count + decision/failed_mask + steps_delta.
constexpr size_t kGuardMinBytes = 4 + (16 * 4 + 4 + 4) + 4 * 4 + 4 + 4 + 2 + 8;

MemoSegment read_segment(MemReader& r) {
  MemoSegment seg;
  seg.entry_pc = r.u32_value();
  seg.entry_val = read_valuation(r);
  seg.policy_hash = r.u64_value();
  u32 n = r.u32_value();
  if (r.fits(n, 4)) {
    seg.popped.reserve(n);
    for (u32 i = 0; i < n; ++i) seg.popped.push_back(r.u32_value());
  }
  n = r.u32_value();
  if (r.fits(n, 8)) {
    seg.packets.reserve(n);
    for (u32 i = 0; i < n; ++i) seg.packets.push_back(read_packet(r));
  }
  n = r.u32_value();
  if (r.fits(n, 4)) {
    seg.loop_values.reserve(n);
    for (u32 i = 0; i < n; ++i) seg.loop_values.push_back(r.u32_value());
  }
  n = r.u32_value();
  if (r.fits(n, 1)) {
    seg.direction_bits.reserve(n);
    for (u32 i = 0; i < n; ++i) seg.direction_bits.push_back(r.u8_value());
  }
  n = r.u32_value();
  if (r.fits(n, 4)) {
    seg.indirect_targets.reserve(n);
    for (u32 i = 0; i < n; ++i) seg.indirect_targets.push_back(r.u32_value());
  }
  seg.peeked_next = r.u8_value() != 0;
  seg.peeked = read_packet(r);
  seg.eos_observed = r.u8_value() != 0;
  seg.halted = r.u8_value() != 0;
  seg.exit_pc = r.u32_value();
  seg.exit_val = read_valuation(r);
  n = r.u32_value();
  if (r.fits(n, 4)) {
    seg.pushed.reserve(n);
    for (u32 i = 0; i < n; ++i) seg.pushed.push_back(r.u32_value());
  }
  n = r.u32_value();
  if (r.fits(n, 9)) {
    seg.events.reserve(n);
    for (u32 i = 0; i < n; ++i) {
      trace::OracleEvent ev;
      ev.source = r.u32_value();
      ev.destination = r.u32_value();
      ev.kind = static_cast<isa::BranchKind>(r.u8_value());
      seg.events.push_back(ev);
    }
  }
  seg.steps = r.u64_value();
  seg.index_hits = r.u64_value();
  seg.index_fallbacks = r.u64_value();
  n = r.u32_value();
  if (r.fits(n, kGuardMinBytes)) {
    seg.guards.reserve(n);
    for (u32 i = 0; i < n && r.ok; ++i) {
      SegmentGuard g;
      g.pc = r.u32_value();
      g.val = read_valuation(r);
      g.d_packets = r.u32_value();
      g.d_loops = r.u32_value();
      g.d_bits = r.u32_value();
      g.d_targets = r.u32_value();
      g.pops = r.u32_value();
      const u32 ns = r.u32_value();
      if (!r.fits(ns, 4)) break;
      g.suffix.reserve(ns);
      for (u32 j = 0; j < ns; ++j) g.suffix.push_back(r.u32_value());
      g.decision = r.u8_value() != 0;
      g.failed_mask = r.u8_value();
      g.steps_delta = r.u64_value();
      seg.guards.push_back(std::move(g));
    }
  }
  return seg;
}

void put_frontier(std::vector<u8>& out, const FrontierEntry& e) {
  put_u32(out, e.pc);
  put_valuation(out, e.val);
  put_u64(out, e.policy_hash);
  put_u8(out, e.strict ? 1 : 0);
  put_u64(out, e.stack_hash);
  put_u64(out, e.evidence_fp);
  put_u32(out, e.packet_rem);
  put_u32(out, e.loop_rem);
  put_u32(out, e.bit_rem);
  put_u32(out, e.target_rem);
  put_u8(out, e.failed_mask);
  put_u8(out, e.has_decision ? 1 : 0);
  put_u8(out, e.decision ? 1 : 0);
  put_u64(out, e.steps_to_complete);
}

FrontierEntry read_frontier(MemReader& r) {
  FrontierEntry e;
  e.pc = r.u32_value();
  e.val = read_valuation(r);
  e.policy_hash = r.u64_value();
  e.strict = r.u8_value() != 0;
  e.stack_hash = r.u64_value();
  e.evidence_fp = r.u64_value();
  e.packet_rem = r.u32_value();
  e.loop_rem = r.u32_value();
  e.bit_rem = r.u32_value();
  e.target_rem = r.u32_value();
  e.failed_mask = r.u8_value();
  e.has_decision = r.u8_value() != 0;
  e.decision = r.u8_value() != 0;
  e.steps_to_complete = r.u64_value();
  return e;
}

}  // namespace

u64 MemoValuation::hash() const {
  u64 h = 0x243f6a8885a308d3ull;
  const auto mix = [&h](u64 v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const u32 reg : regs) mix(reg);
  mix(known);
  mix(flags);
  return h;
}

u64 FrontierEntry::key_hash() const {
  u64 h = val.hash();
  const auto mix = [&h](u64 v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(pc);
  mix(policy_hash);
  mix(strict ? 0x5bf03635u : 0x2545f491u);
  mix(stack_hash);
  mix(evidence_fp);
  mix((static_cast<u64>(packet_rem) << 32) | loop_rem);
  mix((static_cast<u64>(bit_rem) << 32) | target_rem);
  return h;
}

bool FrontierEntry::same_guards(const FrontierEntry& other) const {
  return pc == other.pc && val == other.val &&
         policy_hash == other.policy_hash && strict == other.strict &&
         stack_hash == other.stack_hash && evidence_fp == other.evidence_fp &&
         packet_rem == other.packet_rem && loop_rem == other.loop_rem &&
         bit_rem == other.bit_rem && target_rem == other.target_rem;
}

size_t MemoSegment::bytes() const {
  size_t total = sizeof(MemoSegment) + popped.capacity() * sizeof(Address) +
                 packets.capacity() * sizeof(trace::BranchPacket) +
                 loop_values.capacity() * sizeof(u32) +
                 direction_bits.capacity() * sizeof(u8) +
                 indirect_targets.capacity() * sizeof(Address) +
                 pushed.capacity() * sizeof(Address) +
                 events.capacity() * sizeof(trace::OracleEvent) +
                 guards.capacity() * sizeof(SegmentGuard);
  for (const SegmentGuard& g : guards) {
    total += g.suffix.capacity() * sizeof(Address);
  }
  return total;
}

bool MemoSegment::same_entry(const MemoSegment& other) const {
  return entry_pc == other.entry_pc && entry_val == other.entry_val &&
         policy_hash == other.policy_hash && popped == other.popped &&
         packets == other.packets && loop_values == other.loop_values &&
         direction_bits == other.direction_bits &&
         indirect_targets == other.indirect_targets &&
         peeked_next == other.peeked_next &&
         (!peeked_next || peeked == other.peeked) &&
         eos_observed == other.eos_observed && halted == other.halted &&
         guards == other.guards;
}

MemoCache::MemoCache(MemoOptions options) : options_(options) {
  size_t shard_count = options_.shards == 0 ? 1 : options_.shards;
  // Round up to a power of two so shard_for can mask.
  while ((shard_count & (shard_count - 1)) != 0) ++shard_count;
  options_.shards = shard_count;
  shard_mask_ = shard_count - 1;
  shard_budget_ = std::max<size_t>(1, options_.budget_bytes / shard_count);
  shards_ = std::vector<Shard>(shard_count);
  const size_t slots = std::max<size_t>(kProbe, options_.slots_per_shard);
  const size_t fslots = std::max<size_t>(kProbe, options_.frontier_slots_per_shard);
  for (Shard& shard : shards_) {
    shard.slots.resize(slots);
    shard.fslots.resize(fslots);
  }
}

size_t MemoCache::lookup(u64 key, Handle* out, size_t max) const {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled || max == 0) return 0;
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  const size_t base = probe_base(key, shard.slots.size());
  size_t found = 0;
  for (size_t i = 0; i < kProbe && found < max; ++i) {
    Slot& slot = shard.slots[(base + i) % shard.slots.size()];
    if (slot.segment != nullptr && slot.key == key) {
      slot.tick = ++shard.tick;  // touch for window-local LRU
      ++slot.hits;               // MEM1 top-K ranking
      out[found++] = slot.segment;
    }
  }
  return found;
#else
  (void)key;
  (void)out;
  (void)max;
  return 0;
#endif
}

void MemoCache::insert(u64 key, Handle segment) {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled || segment == nullptr) return;
  const size_t size = segment->bytes();
  if (size > shard_budget_) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shard_for(key);
  u64 evicted = 0;
  {
    std::lock_guard lock(shard.mu);
    const size_t base = probe_base(key, shard.slots.size());
    Slot* match = nullptr;
    Slot* empty = nullptr;
    Slot* lru = nullptr;
    for (size_t i = 0; i < kProbe; ++i) {
      Slot& slot = shard.slots[(base + i) % shard.slots.size()];
      if (slot.segment == nullptr) {
        if (empty == nullptr) empty = &slot;
      } else if (slot.key == key && slot.segment->same_entry(*segment)) {
        match = &slot;
        break;
      } else if (lru == nullptr || slot.tick < lru->tick) {
        lru = &slot;
      }
    }
    Slot* dest = match != nullptr ? match : (empty != nullptr ? empty : lru);
    if (dest->segment != nullptr) {
      shard.bytes -= dest->segment->bytes();
      bytes_.fetch_sub(dest->segment->bytes(), std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      if (match == nullptr) ++evicted;
    }
    dest->key = key;
    dest->segment = std::move(segment);
    dest->tick = ++shard.tick;
    if (match == nullptr) dest->hits = 0;
    shard.bytes += size;
    bytes_.fetch_add(size, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    evicted += sweep_to_budget(shard, dest, nullptr);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    auto& metrics = MemoObsMetrics::get();
    metrics.inserts.inc();
    if (evicted != 0) metrics.evictions.inc(evicted);
    metrics.bytes_hwm.set_max(bytes_.load(std::memory_order_relaxed));
  }
#else
  (void)key;
  (void)segment;
#endif
}

void MemoCache::note_hit() const {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) MemoObsMetrics::get().hits.inc();
}

void MemoCache::note_miss() const {
  misses_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) MemoObsMetrics::get().misses.inc();
}

bool MemoCache::frontier_lookup(const FrontierEntry& guards,
                                FrontierEntry* out) const {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled) return false;
  const u64 key = guards.key_hash();
  Shard& shard = shard_for(key);
  bool found = false;
  {
    std::lock_guard lock(shard.mu);
    const size_t base = probe_base(key, shard.fslots.size());
    for (size_t i = 0; i < kProbe; ++i) {
      FrontierSlot& slot = shard.fslots[(base + i) % shard.fslots.size()];
      if (slot.used && slot.key == key && slot.entry.same_guards(guards)) {
        slot.tick = ++shard.ftick;
        ++slot.hits;
        if (out != nullptr) *out = slot.entry;
        found = true;
        break;
      }
    }
  }
  if (found) {
    frontier_hits_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) MemoObsMetrics::get().frontier_hits.inc();
  } else {
    frontier_misses_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) MemoObsMetrics::get().frontier_misses.inc();
  }
  return found;
#else
  (void)guards;
  (void)out;
  return false;
#endif
}

void MemoCache::frontier_insert(const FrontierEntry& entry) {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled) return;
  if (kFrontierEntryBytes > shard_budget_) {
    // A budget smaller than one slot cannot hold any frontier entry.
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const u64 key = entry.key_hash();
  Shard& shard = shard_for(key);
  u64 evicted = 0;
  {
    std::lock_guard lock(shard.mu);
    const size_t base = probe_base(key, shard.fslots.size());
    FrontierSlot* match = nullptr;
    FrontierSlot* empty = nullptr;
    FrontierSlot* lru = nullptr;
    for (size_t i = 0; i < kProbe; ++i) {
      FrontierSlot& slot = shard.fslots[(base + i) % shard.fslots.size()];
      if (!slot.used) {
        if (empty == nullptr) empty = &slot;
      } else if (slot.key == key && slot.entry.same_guards(entry)) {
        match = &slot;
        break;
      } else if (lru == nullptr || slot.tick < lru->tick) {
        lru = &slot;
      }
    }
    if (match != nullptr) {
      // Pool knowledge: dead-branch bits OR together; a known-good decision
      // fills in once and stays (concurrent recorders agree — the decision
      // is a function of the guarded state).
      match->entry.failed_mask |= entry.failed_mask;
      if (!match->entry.has_decision && entry.has_decision) {
        match->entry.has_decision = true;
        match->entry.decision = entry.decision;
        match->entry.steps_to_complete = entry.steps_to_complete;
      }
      match->tick = ++shard.ftick;
    } else {
      FrontierSlot* dest = empty != nullptr ? empty : lru;
      if (dest->used) {
        ++evicted;
      } else {
        ++shard.fcount;
        shard.bytes += kFrontierEntryBytes;
        bytes_.fetch_add(kFrontierEntryBytes, std::memory_order_relaxed);
        frontier_entries_.fetch_add(1, std::memory_order_relaxed);
      }
      dest->key = key;
      dest->entry = entry;
      dest->tick = ++shard.ftick;
      dest->hits = 0;
      dest->used = true;
      evicted += sweep_to_budget(shard, nullptr, dest);
    }
  }
  frontier_inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    auto& metrics = MemoObsMetrics::get();
    metrics.frontier_inserts.inc();
    if (evicted != 0) metrics.evictions.inc(evicted);
    metrics.bytes_hwm.set_max(bytes_.load(std::memory_order_relaxed));
  }
#else
  (void)entry;
#endif
}

u64 MemoCache::sweep_to_budget(Shard& shard, const Slot* keep_slot,
                               const FrontierSlot* keep_fslot) {
  // Two-tier clock sweep with scanned-count termination: the inserting tier
  // evicts its own entries first, then the other tier pays if the shard is
  // still over budget. Each tier's scan visits every slot at most once, so
  // the sweep cannot spin on empty slots (the old single-tier loop could,
  // when frontier bytes alone kept the shard over budget with no segment
  // victims left). Post-condition: shard.bytes <= shard_budget_, because the
  // protected fresh entry alone fits the budget (both insert paths reject
  // oversize entries before getting here).
  u64 evicted = 0;
  const bool frontier_first = keep_fslot != nullptr;
  for (int tier = 0; tier < 2 && shard.bytes > shard_budget_; ++tier) {
    const bool frontier = (tier == 0) == frontier_first;
    if (frontier) {
      for (size_t scanned = 0;
           shard.bytes > shard_budget_ && scanned < shard.fslots.size();
           ++scanned) {
        FrontierSlot& victim =
            shard.fslots[shard.fsweep_hand++ % shard.fslots.size()];
        if (&victim == keep_fslot || !victim.used) continue;
        victim.used = false;
        --shard.fcount;
        shard.bytes -= kFrontierEntryBytes;
        bytes_.fetch_sub(kFrontierEntryBytes, std::memory_order_relaxed);
        frontier_entries_.fetch_sub(1, std::memory_order_relaxed);
        ++evicted;
      }
    } else {
      for (size_t scanned = 0;
           shard.bytes > shard_budget_ && scanned < shard.slots.size();
           ++scanned) {
        Slot& victim = shard.slots[shard.sweep_hand++ % shard.slots.size()];
        if (&victim == keep_slot || victim.segment == nullptr) continue;
        shard.bytes -= victim.segment->bytes();
        bytes_.fetch_sub(victim.segment->bytes(), std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
        victim.segment.reset();
        ++evicted;
      }
    }
  }
  return evicted;
}

bool MemoCache::chain_fp_lookup(u64 key, u64* fp) const {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled) return false;
  std::lock_guard lock(chain_fp_mu_);
  ChainFpSlot* const set = &chain_fp_slots_[(key % kChainFpSets) * kChainFpWays];
  for (size_t way = 0; way < kChainFpWays; ++way) {
    ChainFpSlot& slot = set[way];
    if (slot.valid && slot.key == key) {
      slot.tick = ++chain_fp_tick_;
      if (fp != nullptr) *fp = slot.fp;
      return true;
    }
  }
  return false;
#else
  (void)key;
  (void)fp;
  return false;
#endif
}

void MemoCache::chain_fp_store(u64 key, u64 fp) {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled) return;
  std::lock_guard lock(chain_fp_mu_);
  ChainFpSlot* const set = &chain_fp_slots_[(key % kChainFpSets) * kChainFpWays];
  // Same key refreshes in place; otherwise fill an empty way; otherwise
  // displace the least-recently-touched way (and count the casualty — a
  // fleet whose working set of live chains overflows the sets shows up
  // here, not as silent hit-rate loss).
  ChainFpSlot* victim = &set[0];
  for (size_t way = 0; way < kChainFpWays; ++way) {
    ChainFpSlot& slot = set[way];
    if (slot.valid && slot.key == key) {
      slot.fp = fp;
      slot.tick = ++chain_fp_tick_;
      return;
    }
    if (!slot.valid) {
      victim = &slot;
      break;
    }
    if (slot.tick < victim->tick) victim = &slot;
  }
  if (victim->valid && victim->key != key) {
    if constexpr (obs::kEnabled) {
      MemoObsMetrics::get().fingerprint_evicted.inc();
    }
  }
  *victim = {key, fp, ++chain_fp_tick_, true};
#else
  (void)key;
  (void)fp;
#endif
}

size_t MemoCache::touch_key(u64 key, bool frontier) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  size_t warmed = 0;
  if (frontier) {
    const size_t base = probe_base(key, shard.fslots.size());
    for (size_t i = 0; i < kProbe; ++i) {
      FrontierSlot& slot = shard.fslots[(base + i) % shard.fslots.size()];
      if (slot.used && slot.key == key) {
        slot.tick = ++shard.ftick;
        ++warmed;
      }
    }
  } else {
    const size_t base = probe_base(key, shard.slots.size());
    for (size_t i = 0; i < kProbe; ++i) {
      Slot& slot = shard.slots[(base + i) % shard.slots.size()];
      if (slot.segment != nullptr && slot.key == key) {
        slot.tick = ++shard.tick;
        ++warmed;
      }
    }
  }
  return warmed;
}

void MemoCache::note_session(u64 device, std::span<const u64> segment_keys,
                             std::span<const u64> frontier_keys) {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled) return;
  if (segment_keys.empty() && frontier_keys.empty()) return;
  const auto dedup_cap = [](std::span<const u64> keys) {
    std::vector<u64> out;
    out.reserve(std::min(keys.size(), kMaxPrefetchKeys));
    for (const u64 key : keys) {
      if (out.size() >= kMaxPrefetchKeys) break;
      if (std::find(out.begin(), out.end(), key) == out.end()) {
        out.push_back(key);
      }
    }
    return out;
  };
  std::lock_guard lock(device_mu_);
  if (device_tags_.size() >= kMaxPrefetchDevices &&
      device_tags_.find(device) == device_tags_.end()) {
    // Evict the stalest tag set (smallest stamp) to stay bounded.
    auto oldest = device_tags_.begin();
    for (auto it = device_tags_.begin(); it != device_tags_.end(); ++it) {
      if (it->second.stamp < oldest->second.stamp) oldest = it;
    }
    device_tags_.erase(oldest);
  }
  DeviceTags& tags = device_tags_[device];
  tags.segment_keys = dedup_cap(segment_keys);
  tags.frontier_keys = dedup_cap(frontier_keys);
  tags.stamp = ++device_stamp_;
#else
  (void)device;
  (void)segment_keys;
  (void)frontier_keys;
#endif
}

size_t MemoCache::prefetch(u64 device) {
#if RAP_MEMO_ENABLED
  if (g_memo_disabled) return 0;
  std::vector<u64> seg_keys;
  std::vector<u64> frontier_keys;
  {
    std::lock_guard lock(device_mu_);
    const auto it = device_tags_.find(device);
    if (it == device_tags_.end()) return 0;
    seg_keys = it->second.segment_keys;
    frontier_keys = it->second.frontier_keys;
  }
  size_t warmed = 0;
  for (const u64 key : seg_keys) warmed += touch_key(key, /*frontier=*/false);
  for (const u64 key : frontier_keys) warmed += touch_key(key, /*frontier=*/true);
  if (warmed > 0) {
    prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    prefetch_warmed_.fetch_add(warmed, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      auto& metrics = MemoObsMetrics::get();
      metrics.prefetch_hits.inc();
      metrics.prefetch_warmed.inc(warmed);
    }
  }
  return warmed;
#else
  (void)device;
  return 0;
#endif
}

std::vector<u8> MemoCache::serialize_warm() const {
  std::vector<u8> out;
  out.insert(out.end(), kMemMagic.begin(), kMemMagic.end());
  put_u32(out, kMemVersion);

  // Rank each tier by lifetime hit count (tie: most recently touched) and
  // serialize the top-K — the entries a restarted verifier will want first.
  struct SegRank {
    u64 hits = 0;
    u64 tick = 0;
    u64 key = 0;
    Handle segment;
  };
  struct FrontRank {
    u64 hits = 0;
    u64 tick = 0;
    FrontierEntry entry;
  };
  std::vector<SegRank> segments;
  std::vector<FrontRank> frontier;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const Slot& slot : shard.slots) {
      if (slot.segment != nullptr) {
        segments.push_back({slot.hits, slot.tick, slot.key, slot.segment});
      }
    }
    for (const FrontierSlot& slot : shard.fslots) {
      if (slot.used) frontier.push_back({slot.hits, slot.tick, slot.entry});
    }
  }
  const auto rank = [](const auto& a, const auto& b) {
    return a.hits != b.hits ? a.hits > b.hits : a.tick > b.tick;
  };
  std::sort(segments.begin(), segments.end(), rank);
  std::sort(frontier.begin(), frontier.end(), rank);
  const size_t top_k = options_.snapshot_top_k;
  if (segments.size() > top_k) segments.resize(top_k);
  if (frontier.size() > top_k) frontier.resize(top_k);

  put_u32(out, static_cast<u32>(segments.size()));
  for (const SegRank& s : segments) {
    put_u64(out, s.key);
    put_segment(out, *s.segment);
  }
  put_u32(out, static_cast<u32>(frontier.size()));
  for (const FrontRank& f : frontier) put_frontier(out, f.entry);

  {
    std::lock_guard lock(device_mu_);
    put_u32(out, static_cast<u32>(device_tags_.size()));
    for (const auto& [device, tags] : device_tags_) {
      put_u64(out, device);
      put_u32(out, static_cast<u32>(tags.segment_keys.size()));
      for (const u64 key : tags.segment_keys) put_u64(out, key);
      put_u32(out, static_cast<u32>(tags.frontier_keys.size()));
      for (const u64 key : tags.frontier_keys) put_u64(out, key);
    }
  }

  put_u32(out, crc32(out));
  return out;
}

bool MemoCache::restore_warm(std::span<const u8> blob) {
  // Envelope first: magic, version, and a CRC over everything before the
  // trailer. A truncated or corrupted blob fails here and the cache stays
  // exactly as it was — cold start, never a wrong entry.
  if (blob.size() < kMemMagic.size() + 8) return false;
  if (!std::equal(kMemMagic.begin(), kMemMagic.end(), blob.begin())) {
    return false;
  }
  const std::span<const u8> body = blob.first(blob.size() - 4);
  MemReader trailer{blob.subspan(blob.size() - 4)};
  if (trailer.u32_value() != crc32(body)) return false;

  MemReader r{body.subspan(kMemMagic.size())};
  if (r.u32_value() != kMemVersion) return false;

  // Parse everything into staging before touching the live tables, so a
  // malformed body past the CRC (e.g. a forged count) cannot half-apply.
  std::vector<std::pair<u64, MemoSegment>> segments;
  const u32 seg_count = r.u32_value();
  if (!r.fits(seg_count, 8)) return false;
  segments.reserve(seg_count);
  for (u32 i = 0; i < seg_count && r.ok; ++i) {
    const u64 key = r.u64_value();
    segments.emplace_back(key, read_segment(r));
  }
  std::vector<FrontierEntry> frontier;
  const u32 frontier_count = r.u32_value();
  if (!r.fits(frontier_count, 32)) return false;
  frontier.reserve(frontier_count);
  for (u32 i = 0; i < frontier_count && r.ok; ++i) {
    frontier.push_back(read_frontier(r));
  }
  struct StagedTags {
    u64 device = 0;
    std::vector<u64> segment_keys;
    std::vector<u64> frontier_keys;
  };
  std::vector<StagedTags> tags;
  const u32 device_count = r.u32_value();
  if (!r.fits(device_count, 8)) return false;
  tags.reserve(device_count);
  for (u32 i = 0; i < device_count && r.ok; ++i) {
    StagedTags t;
    t.device = r.u64_value();
    const u32 ns = r.u32_value();
    if (!r.fits(ns, 8)) return false;
    t.segment_keys.reserve(ns);
    for (u32 j = 0; j < ns; ++j) t.segment_keys.push_back(r.u64_value());
    const u32 nf = r.u32_value();
    if (!r.fits(nf, 8)) return false;
    t.frontier_keys.reserve(nf);
    for (u32 j = 0; j < nf; ++j) t.frontier_keys.push_back(r.u64_value());
    tags.push_back(std::move(t));
  }
  if (!r.done()) return false;

  // Commit. Serialization order was hottest-first; insert in reverse so the
  // hottest entries carry the freshest ticks and survive any LRU contention.
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    insert(it->first,
           std::make_shared<const MemoSegment>(std::move(it->second)));
  }
  for (auto it = frontier.rbegin(); it != frontier.rend(); ++it) {
    frontier_insert(*it);
  }
  for (const StagedTags& t : tags) {
    note_session(t.device, t.segment_keys, t.frontier_keys);
  }
  return true;
}

void MemoCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (Slot& slot : shard.slots) {
      slot.key = 0;
      slot.tick = 0;
      slot.hits = 0;
      slot.segment.reset();
    }
    for (FrontierSlot& slot : shard.fslots) {
      slot.key = 0;
      slot.tick = 0;
      slot.hits = 0;
      slot.used = false;
      slot.entry = FrontierEntry{};
    }
    shard.bytes = 0;
    shard.fcount = 0;
    shard.tick = 0;
    shard.ftick = 0;
    shard.sweep_hand = 0;
    shard.fsweep_hand = 0;
  }
  {
    std::lock_guard lock(device_mu_);
    device_tags_.clear();
    device_stamp_ = 0;
  }
  {
    std::lock_guard lock(chain_fp_mu_);
    chain_fp_slots_.fill({});
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  rejects_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
  frontier_hits_.store(0, std::memory_order_relaxed);
  frontier_misses_.store(0, std::memory_order_relaxed);
  frontier_inserts_.store(0, std::memory_order_relaxed);
  frontier_entries_.store(0, std::memory_order_relaxed);
  prefetch_hits_.store(0, std::memory_order_relaxed);
  prefetch_warmed_.store(0, std::memory_order_relaxed);
}

MemoStats MemoCache::stats() const {
  MemoStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejects = rejects_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.frontier_hits = frontier_hits_.load(std::memory_order_relaxed);
  stats.frontier_misses = frontier_misses_.load(std::memory_order_relaxed);
  stats.frontier_inserts = frontier_inserts_.load(std::memory_order_relaxed);
  stats.frontier_entries = frontier_entries_.load(std::memory_order_relaxed);
  stats.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  stats.prefetch_warmed = prefetch_warmed_.load(std::memory_order_relaxed);
  return stats;
}

void MemoCache::force_disable(bool disable) { g_memo_disabled = disable; }

}  // namespace raptrack::verify
