// Evidence audit: turns a verification result into the structured summary a
// human operator (or SIEM pipeline) consumes — per-kind transfer counts,
// function-level activity, hot loops, policy findings with context, and the
// protocol check breakdown. CFA's value over CFI is precisely this
// after-the-fact auditability (§II-D of the paper; the TRACES line of work
// calls it "runtime auditing").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rewrite/manifest.hpp"
#include "verify/verifier.hpp"

namespace raptrack::verify {

struct FunctionActivity {
  Address entry = 0;      ///< call-target address
  std::string label;      ///< symbol name when known
  u64 calls = 0;
  u64 returns = 0;
};

struct EdgeFrequency {
  Address source = 0;
  Address destination = 0;
  isa::BranchKind kind = isa::BranchKind::None;
  u64 count = 0;
};

struct AuditReport {
  bool accepted = false;
  Verdict verdict_class = Verdict::Reject;  ///< taxonomy bucket
  std::string verdict;            ///< one-line outcome
  std::vector<ChainGap> gaps;     ///< missing report ranges (damaged chains)
  std::vector<std::string> chain_notes;  ///< resync audit trail
  bool partial_reconstruction = false;
  u64 total_transfers = 0;
  std::map<std::string, u64> transfers_by_kind;
  std::vector<FunctionActivity> functions;   ///< by descending call count
  std::vector<EdgeFrequency> hottest_edges;  ///< top edges by frequency
  std::vector<AttackFinding> findings;
  u64 evidence_packets = 0;
  u64 evidence_loop_values = 0;
};

/// Build the audit from a verification result. `program` supplies symbol
/// names (when the image carries them) and `manifest` maps MTBAR slots back
/// to original sites so the audit reports original-program addresses.
AuditReport audit_verification(const VerificationResult& result,
                               const Program& program,
                               const rewrite::Manifest* manifest = nullptr,
                               size_t top_edges = 10);

/// Same audit, resolved through a shared Deployment cache: symbols come from
/// the deployment's program and the slot→original-site reverse map is the
/// precomputed ReplayIndex one (O(log n) per event instead of a linear
/// manifest scan) — the same index the verifier replays against.
AuditReport audit_verification(const VerificationResult& result,
                               const Deployment& deployment,
                               size_t top_edges = 10);

/// Render the audit as a human-readable multi-line string.
std::string format_audit(const AuditReport& report);

}  // namespace raptrack::verify
