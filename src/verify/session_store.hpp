// Per-device challenge/nonce session state, split out of the Verifier so the
// expected-deployment side of verification can be fully const and shared.
//
// The store keeps, per device, the challenges currently outstanding (issued
// but not yet resolved to a terminal verdict) and the challenges already
// consumed — a consumed challenge can never become outstanding again, which
// is the replay-protection invariant. Devices hash into a fixed set of
// mutex-guarded shards, so farm workers adjudicating different devices
// almost never contend on the same lock.
#pragma once

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cfa/report.hpp"
#include "common/types.hpp"

namespace raptrack::verify {

class MemoCache;

/// Stable identity of one proving device in the fleet.
using DeviceId = u64;

class SessionStore {
 public:
  explicit SessionStore(size_t shard_count = 16);

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;
  // Moves transfer the shard vector wholesale (no element moves, so the
  // mutexes never move); only safe while no other thread holds the store.
  SessionStore(SessionStore&&) = default;
  SessionStore& operator=(SessionStore&&) = default;

  enum class ChallengeState : u8 { Unknown, Outstanding, Used };

  /// Register `chal` as outstanding for `device`. No-op when it is already
  /// outstanding or already consumed (a used challenge stays used).
  void issue(DeviceId device, const cfa::Challenge& chal);

  ChallengeState state(DeviceId device, const cfa::Challenge& chal) const;

  /// Outstanding -> Used transition; returns false when `chal` was not
  /// outstanding for `device` (already consumed, or never issued).
  bool consume(DeviceId device, const cfa::Challenge& chal);

  size_t outstanding_count(DeviceId device) const;

  // -- crash recovery --------------------------------------------------------
  //
  // A verifier restart mid-campaign must not forget which challenges are
  // outstanding (the prover would be stuck retransmitting against a dead
  // session) nor which are consumed (a replayed chain would Accept twice).
  // serialize() emits a deterministic, checksummed snapshot of every
  // device's challenge state: "SST1" | device_count | per device (sorted by
  // id): id | outstanding... | used... | crc32 trailer.

  /// Point-in-time snapshot of all shards. Safe to call concurrently with
  /// updates (takes each shard lock in turn); the snapshot is consistent
  /// per device, which is the unit recovery cares about. With `memo`, a
  /// self-delimiting "MEM1" warm-cache section (MemoCache::serialize_warm)
  /// is appended after the SST1 crc trailer, so a restored verifier starts
  /// near its steady-state hit rate instead of cold.
  std::vector<u8> serialize(const MemoCache* memo = nullptr) const;

  /// Replace the store's entire contents from a serialize() blob. Returns
  /// false (leaving the store untouched) on bad magic, truncation, trailing
  /// bytes, or a checksum mismatch — a torn snapshot must never half-load.
  /// A trailing MEM1 section is restored into `memo` when given (a corrupt
  /// warm section degrades to a cold cache; it never fails the restore,
  /// because session state — the correctness-critical part — is intact).
  bool deserialize(std::span<const u8> bytes, MemoCache* memo = nullptr);

 private:
  struct DeviceSessions {
    std::vector<cfa::Challenge> outstanding;
    std::vector<cfa::Challenge> used;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<DeviceId, DeviceSessions> devices;
  };

  Shard& shard_for(DeviceId device) const {
    // Fibonacci spread: device ids are often small and sequential.
    return shards_[(device * 0x9e3779b97f4a7c15ull) >> 48 & (shards_.size() - 1)];
  }

  mutable std::vector<Shard> shards_;
};

}  // namespace raptrack::verify
