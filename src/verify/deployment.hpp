// Shared immutable deployment cache for the Verifier side.
//
// Verifying one report chain used to re-derive, per call, everything the
// offline phase already knew about the expected image: re-hash H_MEM,
// re-decode every instruction the replayer walks, and linearly re-scan the
// manifest for every slot/veneer lookup. A service-scale verifier
// adjudicates thousands of chains against the *same* deployed image, so all
// of that is hoisted here and computed exactly once:
//
//   * ReplayIndex — dense predecoded instruction array (reusing
//     isa::DecodedImage), a per-instruction static branch-target table (the
//     CFG successor map at instruction granularity), O(log n)/O(1) MTBAR
//     slot and veneer lookups, and the slot→original-site reverse map the
//     audit needs;
//   * Deployment — an immutable, self-contained bundle of the expected
//     program, its manifest, the expected H_MEM, and the ReplayIndex.
//
// A Deployment owns copies of its program and manifest, never mutates after
// construction, and is shared via shared_ptr<const Deployment>: one instance
// serves every verification of every device running that image, across all
// farm workers concurrently, with no synchronization.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asm/program.hpp"
#include "crypto/sha256.hpp"
#include "instr/traces_rewriter.hpp"
#include "isa/decoded_image.hpp"
#include "rewrite/manifest.hpp"
#include "verify/memo.hpp"
#include "verify/replayer.hpp"

namespace raptrack::cfa {
struct SpeculationDict;
}

namespace raptrack::verify {

/// Precomputed lookup structures over one deployed image. Built once per
/// Deployment (or per legacy PathReplayer::replay call); immutable after
/// construction. All returned pointers reference the backing program and
/// manifest, which must outlive the index.
class ReplayIndex {
 public:
  ReplayIndex(const Program& program, ReplayMode mode,
              const rewrite::Manifest* rap,
              const instr::TracesManifest* traces);

  const Program& program() const { return *program_; }

  bool contains(Address pc) const { return decoded_.contains(pc); }

  /// Predecoded instruction at an aligned, contained pc. nullptr when the
  /// word does not decode (or predecode declined it — callers fall back to
  /// Program::instruction_at for the authoritative answer).
  const isa::Instruction* instruction_at(Address pc) const {
    const auto& slot = decoded_.slot(pc);
    return slot.kind == isa::SlotKind::Valid ? &slot.instr : nullptr;
  }

  /// Static successor map: the precomputed taken-edge destination of the
  /// direct / conditional / direct-call instruction at `pc` (0 for every
  /// other instruction — those kinds always have a nonzero target here).
  Address branch_target(Address pc) const {
    return targets_[(pc - decoded_.base()) >> 2];
  }

  // -- RAP manifest lookups (indexed equivalents of rewrite::Manifest) ------
  bool in_mtbar(Address addr) const {
    return has_mtbar_ && addr >= mtbar_base_ && addr <= mtbar_limit_;
  }
  const rewrite::SlotRecord* slot_containing(Address addr) const;
  const rewrite::SlotRecord* slot_for_site(Address site) const;
  const rewrite::LoopVeneerRecord* rap_veneer_at_svc(Address svc_addr) const;

  // -- TRACES manifest lookups ----------------------------------------------
  const instr::VeneerRecord* traces_veneer_containing(Address addr) const;
  const instr::VeneerRecord* traces_veneer_at_svc(Address svc_addr) const;

  /// Original-program address for a reconstructed event source: MTBAR slot
  /// sources map back to the rewritten site (the audit's reverse map).
  Address original_site(Address source) const {
    const auto* slot = slot_containing(source);
    return slot != nullptr ? slot->site : source;
  }

 private:
  const Program* program_;
  isa::DecodedImage decoded_;
  std::vector<Address> targets_;  ///< per-slot static branch target (or 0)

  bool has_mtbar_ = false;
  Address mtbar_base_ = 0;
  Address mtbar_limit_ = 0;
  std::vector<const rewrite::SlotRecord*> slots_by_base_;  ///< sorted
  std::unordered_map<Address, const rewrite::SlotRecord*> slot_by_site_;
  std::unordered_map<Address, const rewrite::LoopVeneerRecord*> rap_svc_;
  std::vector<const instr::VeneerRecord*> veneers_by_base_;  ///< sorted
  std::unordered_map<Address, const instr::VeneerRecord*> traces_svc_;
};

/// Per-deployment verification configuration: small, copyable, and distinct
/// from the heavyweight Deployment so a farm can register many devices
/// sharing one image but (say) different call-target policies.
struct VerifyConfig {
  ReplayPolicy policy;
  /// SpecCFA-style sub-path dictionary shared with the RoT (must match the
  /// prover's, or speculated payloads fail to decode). Borrowed; must
  /// outlive every verification using this config.
  const cfa::SpeculationDict* speculation = nullptr;
  /// §IV-E watermark-shape check, in bytes; 0 disables.
  u32 expected_watermark = 0;
  /// Consult the deployment's verified sub-path cache during replay. Off, or
  /// with RAP_MEMO compiled out, every replay re-simulates from scratch
  /// (the memo-off ablation leg). Verdicts are identical either way.
  bool use_memo = true;
  /// Consult the frontier memo tier (resolved RAP-ambiguity decisions) on
  /// top of the sub-path cache. Only meaningful with use_memo; off restores
  /// the PR-7 search behavior. Verdicts and digests are identical either
  /// way (a failing frontier-influenced replay re-runs frontier-detached).
  bool use_frontier = true;
};

/// One expected deployed image, fully preprocessed for verification.
/// Immutable and self-contained (owns its program and manifest copies);
/// share freely across threads via shared_ptr<const Deployment>.
class Deployment {
 public:
  static std::shared_ptr<const Deployment> rap(Program program,
                                               rewrite::Manifest manifest,
                                               Address entry,
                                               MemoOptions memo = {});
  static std::shared_ptr<const Deployment> naive(Program program,
                                                 Address entry,
                                                 MemoOptions memo = {});
  static std::shared_ptr<const Deployment> traces(Program program,
                                                  instr::TracesManifest manifest,
                                                  Address entry,
                                                  MemoOptions memo = {});

  ReplayMode mode() const { return mode_; }
  const Program& program() const { return program_; }
  Address entry() const { return entry_; }
  const rewrite::Manifest* rap_manifest() const {
    return rap_ ? &*rap_ : nullptr;
  }
  const instr::TracesManifest* traces_manifest() const {
    return traces_ ? &*traces_ : nullptr;
  }
  const crypto::Digest& expected_h_mem() const { return h_mem_; }
  const ReplayIndex& index() const { return index_; }
  /// Verified sub-path cache for this image, shared by every verifier and
  /// farm worker replaying against it (internally synchronized — the one
  /// mutable structure behind a const Deployment).
  MemoCache& memo() const { return *memo_; }

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

 private:
  Deployment(ReplayMode mode, Program program,
             std::optional<rewrite::Manifest> rap,
             std::optional<instr::TracesManifest> traces, Address entry,
             MemoOptions memo);

  ReplayMode mode_;
  Program program_;  ///< owned copy; index_ points into it
  std::optional<rewrite::Manifest> rap_;
  std::optional<instr::TracesManifest> traces_;
  Address entry_;
  crypto::Digest h_mem_;
  /// unique_ptr (not a direct member) because the cache's shard mutexes are
  /// immovable and the factories hand the Deployment through shared_ptr.
  std::unique_ptr<MemoCache> memo_;
  ReplayIndex index_;  ///< declared last: built over the members above
};

}  // namespace raptrack::verify
