// Parallel verifier farm: a sharded, multi-threaded verification service
// over the shared deployment caches.
//
// A fleet Verifier adjudicates report chains from many devices at once. The
// work is embarrassingly parallel *across* devices but strictly ordered
// *within* one: challenge bookkeeping for a device must observe its chains
// in submission order (a retransmission racing its original must not
// double-consume the challenge). The farm encodes exactly that rule:
//
//   * every device has a FIFO mailbox of submitted jobs;
//   * a global ready-queue holds activation tokens — devices whose mailbox
//     is non-empty and which no worker currently runs;
//   * a worker pops one token, runs exactly one job for that device, then
//     re-enqueues the token if the mailbox is still non-empty.
//
// Same-device chains therefore serialize in FIFO order while distinct
// devices load-balance freely over the pool. Admission is bounded
// (`queue_capacity`): submit() blocks once the farm holds that many
// unfinished jobs, pushing backpressure onto the transport instead of
// buffering unboundedly.
//
// Immutable state (Deployment caches, the HMAC key schedule, per-device
// VerifyConfig) is shared read-only across workers; the only cross-thread
// mutable state is the SessionStore (internally mutex-sharded by device)
// and the queues under the farm mutex.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "verify/verifier.hpp"

namespace raptrack::verify {

/// Per-device circuit breaker for a long-lived verification service. A
/// device whose submissions keep failing authentication (MAC forgeries,
/// unparseable wire chains) — or which the delivery layer reports as
/// flooding (`penalize`) — is quarantined: further submissions are rejected
/// at the door without spending a worker. After `cooldown` door-rejected
/// admissions the breaker goes half-open and admits exactly one probe job;
/// a clean probe closes the breaker, another forgery re-opens it with the
/// cooldown doubled (capped at `cooldown * backoff_cap`).
///
/// Disabled by default: a quarantining farm is deliberately *not*
/// verdict-identical to a serial Verifier (the differential tests pin that
/// equivalence), so services opt in per FarmOptions.
struct QuarantinePolicy {
  bool enabled = false;
  /// Consecutive forgery strikes that open the breaker.
  u32 strike_threshold = 3;
  /// Door-rejected admissions while open before a half-open probe.
  u32 cooldown = 8;
  /// Cooldown growth cap across re-opens (exponential, 1x..backoff_cap x).
  u32 backoff_cap = 8;
};

struct FarmOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  size_t workers = 0;
  /// Cap an explicit `workers` request at hardware_concurrency(). Replay is
  /// CPU-bound, so oversubscribing threads onto fewer cores only buys
  /// context-switch overhead (measured: 8 workers on 1 core ran at 0.11
  /// parallel efficiency). Benchmarks that measure oversubscription on
  /// purpose opt out.
  bool clamp_workers = true;
  /// Maximum unfinished jobs admitted before submit() blocks.
  size_t queue_capacity = 1024;
  /// Per-device quarantine circuit breaker (disabled by default).
  QuarantinePolicy quarantine;
  /// Fault-injection hook, run inside the worker's containment scope just
  /// before verification. Tests install a throwing hook to prove a panic in
  /// the verify path yields Inconclusive and leaves the worker alive.
  /// Must be thread-safe; never set in production.
  std::function<void(DeviceId)> fault_hook;
};

class VerifierFarm {
 public:
  explicit VerifierFarm(crypto::Key key, FarmOptions options = {},
                        u64 rng_seed = 0x5eed'cafe);
  ~VerifierFarm();

  VerifierFarm(const VerifierFarm&) = delete;
  VerifierFarm& operator=(const VerifierFarm&) = delete;

  /// Register `device` as running `deployment` under `config`. Deployments
  /// are shared: provision any number of devices with the same pointer.
  /// Must complete before the first submit for the device.
  void provision(DeviceId device, std::shared_ptr<const Deployment> deployment,
                 VerifyConfig config = {});

  /// Issue a fresh challenge for `device` (recorded for replay-detection).
  cfa::Challenge issue_challenge(DeviceId device);
  /// Register an externally-issued challenge as outstanding for `device`.
  void adopt_challenge(DeviceId device, const cfa::Challenge& chal);

  /// Queue one decoded report chain. Blocks while the farm is at capacity.
  /// The future yields the same VerificationResult a serial Verifier with
  /// this device's deployment/config/session state would produce.
  std::future<VerificationResult> submit(DeviceId device,
                                         const cfa::Challenge& chal,
                                         std::vector<cfa::SignedReport> reports);

  /// Queue one wire-encoded report chain ("RPC1..."), verified zero-copy:
  /// the worker parses views over `wire_chain` and batch-checks every MAC
  /// straight off the buffer before the protocol core runs. Malformed
  /// framing rejects with the parser's error string.
  std::future<VerificationResult> submit_wire(DeviceId device,
                                              const cfa::Challenge& chal,
                                              std::vector<u8> wire_chain);

  /// Block until every admitted job has completed.
  void drain();

  size_t worker_count() const { return workers_.size(); }
  SessionStore& sessions() { return sessions_; }
  /// The distinct deployments currently provisioned (deduplicated across
  /// devices sharing one image, ordered by expected H_MEM so snapshots are
  /// deterministic). The endpoint's warm-cache snapshot walks these.
  std::vector<std::shared_ptr<const Deployment>> deployments() const;
  /// The RoT key schedule, shared with trusted delivery-layer components
  /// (the VerifierEndpoint MAC-checks datagrams at the door with it).
  const crypto::HmacKeySchedule& key_schedule() const { return key_schedule_; }

  /// Quarantine breaker state for `device` (Closed when unknown).
  enum class Breaker : u8 { Closed, Open, HalfOpen };
  Breaker breaker_state(DeviceId device) const;

  /// External abuse signal: the delivery layer counts `strikes` forgery
  /// strikes against `device` (e.g. datagrams whose report MAC fails at the
  /// endpoint door, or a session exceeding its datagram flood budget).
  /// Feeds the same circuit breaker as in-farm forgery rejects. No-op when
  /// quarantine is disabled.
  void penalize(DeviceId device, u32 strikes = 1);

 private:
  struct Job {
    cfa::Challenge chal{};
    bool is_wire = false;
    std::vector<cfa::SignedReport> reports;  ///< decoded submissions
    std::vector<u8> wire;                    ///< wire submissions (owned)
    std::promise<VerificationResult> promise;
    u64 enqueue_ns = 0;  ///< admission timestamp (observability builds only)
  };
  struct DeviceState {
    std::shared_ptr<const Deployment> deployment;
    VerifyConfig config;
    std::deque<Job> mailbox;
    bool scheduled = false;  ///< a worker is running a job for this device
    // Circuit breaker (see QuarantinePolicy). Guarded by the farm mutex.
    Breaker breaker = Breaker::Closed;
    u32 strikes = 0;        ///< consecutive forgery strikes
    u32 cooldown_left = 0;  ///< door rejects remaining before a probe
    u32 reopens = 0;        ///< re-open count (cooldown backoff factor)
  };

  std::future<VerificationResult> enqueue(DeviceId device, Job job);
  /// Re-touch `device`'s tagged warm-cache entries (cross-session prefetch;
  /// called on challenge issue/adopt, when a verification is imminent).
  void prefetch_for(DeviceId device);
  VerificationResult execute(DeviceId device, const DeviceState& state,
                             Job& job, bool* forgery);
  /// One breaker transition under mu_: a forgery strike or a clean result.
  void update_breaker(DeviceState& state, bool forgery);
  void worker_loop();

  crypto::HmacKeySchedule key_schedule_;
  SessionStore sessions_;

  mutable std::mutex mu_;  ///< guards devices_, ready_, queued_, stopping_
  std::condition_variable work_cv_;   ///< workers: ready_ non-empty / stop
  std::condition_variable space_cv_;  ///< submitters: capacity available
  std::condition_variable drain_cv_;  ///< drain(): queued_ reached zero
  std::unordered_map<DeviceId, DeviceState> devices_;
  std::deque<DeviceId> ready_;  ///< activation tokens (see file comment)
  size_t queued_ = 0;           ///< admitted but not yet completed jobs
  size_t queue_capacity_;
  QuarantinePolicy quarantine_;
  std::function<void(DeviceId)> fault_hook_;
  bool stopping_ = false;

  std::mutex rng_mu_;
  Xoshiro256 rng_;

  std::vector<std::thread> workers_;
};

}  // namespace raptrack::verify
