// Parallel verifier farm: a sharded, multi-threaded verification service
// over the shared deployment caches.
//
// A fleet Verifier adjudicates report chains from many devices at once. The
// work is embarrassingly parallel *across* devices but strictly ordered
// *within* one: challenge bookkeeping for a device must observe its chains
// in submission order (a retransmission racing its original must not
// double-consume the challenge). The farm encodes exactly that rule:
//
//   * every device has a FIFO mailbox of submitted jobs;
//   * a global ready-queue holds activation tokens — devices whose mailbox
//     is non-empty and which no worker currently runs;
//   * a worker pops one token, runs exactly one job for that device, then
//     re-enqueues the token if the mailbox is still non-empty.
//
// Same-device chains therefore serialize in FIFO order while distinct
// devices load-balance freely over the pool. Admission is bounded
// (`queue_capacity`): submit() blocks once the farm holds that many
// unfinished jobs, pushing backpressure onto the transport instead of
// buffering unboundedly.
//
// Immutable state (Deployment caches, the HMAC key schedule, per-device
// VerifyConfig) is shared read-only across workers; the only cross-thread
// mutable state is the SessionStore (internally mutex-sharded by device)
// and the queues under the farm mutex.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "verify/verifier.hpp"

namespace raptrack::verify {

struct FarmOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  size_t workers = 0;
  /// Maximum unfinished jobs admitted before submit() blocks.
  size_t queue_capacity = 1024;
};

class VerifierFarm {
 public:
  explicit VerifierFarm(crypto::Key key, FarmOptions options = {},
                        u64 rng_seed = 0x5eed'cafe);
  ~VerifierFarm();

  VerifierFarm(const VerifierFarm&) = delete;
  VerifierFarm& operator=(const VerifierFarm&) = delete;

  /// Register `device` as running `deployment` under `config`. Deployments
  /// are shared: provision any number of devices with the same pointer.
  /// Must complete before the first submit for the device.
  void provision(DeviceId device, std::shared_ptr<const Deployment> deployment,
                 VerifyConfig config = {});

  /// Issue a fresh challenge for `device` (recorded for replay-detection).
  cfa::Challenge issue_challenge(DeviceId device);
  /// Register an externally-issued challenge as outstanding for `device`.
  void adopt_challenge(DeviceId device, const cfa::Challenge& chal);

  /// Queue one decoded report chain. Blocks while the farm is at capacity.
  /// The future yields the same VerificationResult a serial Verifier with
  /// this device's deployment/config/session state would produce.
  std::future<VerificationResult> submit(DeviceId device,
                                         const cfa::Challenge& chal,
                                         std::vector<cfa::SignedReport> reports);

  /// Queue one wire-encoded report chain ("RPC1..."), verified zero-copy:
  /// the worker parses views over `wire_chain` and batch-checks every MAC
  /// straight off the buffer before the protocol core runs. Malformed
  /// framing rejects with the parser's error string.
  std::future<VerificationResult> submit_wire(DeviceId device,
                                              const cfa::Challenge& chal,
                                              std::vector<u8> wire_chain);

  /// Block until every admitted job has completed.
  void drain();

  size_t worker_count() const { return workers_.size(); }
  SessionStore& sessions() { return sessions_; }

 private:
  struct Job {
    cfa::Challenge chal{};
    bool is_wire = false;
    std::vector<cfa::SignedReport> reports;  ///< decoded submissions
    std::vector<u8> wire;                    ///< wire submissions (owned)
    std::promise<VerificationResult> promise;
    u64 enqueue_ns = 0;  ///< admission timestamp (observability builds only)
  };
  struct DeviceState {
    std::shared_ptr<const Deployment> deployment;
    VerifyConfig config;
    std::deque<Job> mailbox;
    bool scheduled = false;  ///< a worker is running a job for this device
  };

  std::future<VerificationResult> enqueue(DeviceId device, Job job);
  VerificationResult execute(DeviceId device, const DeviceState& state,
                             Job& job);
  void worker_loop();

  crypto::HmacKeySchedule key_schedule_;
  SessionStore sessions_;

  mutable std::mutex mu_;  ///< guards devices_, ready_, queued_, stopping_
  std::condition_variable work_cv_;   ///< workers: ready_ non-empty / stop
  std::condition_variable space_cv_;  ///< submitters: capacity available
  std::condition_variable drain_cv_;  ///< drain(): queued_ reached zero
  std::unordered_map<DeviceId, DeviceState> devices_;
  std::deque<DeviceId> ready_;  ///< activation tokens (see file comment)
  size_t queued_ = 0;           ///< admitted but not yet completed jobs
  size_t queue_capacity_;
  bool stopping_ = false;

  std::mutex rng_mu_;
  Xoshiro256 rng_;

  std::vector<std::thread> workers_;
};

}  // namespace raptrack::verify
