#include "isa/decoded_image.hpp"

#include "common/hex.hpp"

namespace raptrack::isa {

bool fusible_in_superblock(const Instruction& instr) {
  switch (format_of(instr.op)) {
    case Format::Mov16:
    case Format::AluReg:
    case Format::AluImm:
      // Register/immediate ALU, moves and compares: no memory, no control
      // flow, no faults. (rd == PC is harmless — execute() unconditionally
      // overwrites pc with the fall-through address afterwards, on both the
      // oracle and the fast path.)
      return true;
    case Format::Sys:
      return instr.op == Op::NOP;  // HLT/BKPT halt, SVC traps
    default:
      return false;  // branches, loads/stores, PUSH/POP
  }
}

DecodedImage::DecodedImage(Address base, std::span<const u8> bytes,
                           const CycleModel& model, bool superblocks) {
  if (base % 4 != 0) {
    throw Error("DecodedImage: base " + hex32(base) + " is not word-aligned");
  }
  base_ = base;
  const size_t words = bytes.size() / 4;
  end_ = base_ + static_cast<Address>(words * 4);
  slots_.resize(words);
  for (size_t i = 0; i < words; ++i) {
    u32 word = 0;
    for (u32 b = 0; b < 4; ++b) {
      word |= static_cast<u32>(bytes[i * 4 + b]) << (8 * b);
    }
    DecodedSlot& slot = slots_[i];
    slot.raw = word;
    if (const auto decoded = decode(word)) {
      const Cycles taken = model.cost(*decoded, true);
      const Cycles not_taken = model.cost(*decoded, false);
      if (taken > 0xffff || not_taken > 0xffff) {
        // Cost does not fit the packed slot (absurd custom model): leave the
        // slot Undecoded so the decode-per-step path charges the exact value.
        continue;
      }
      slot.instr = *decoded;
      slot.cost_taken = static_cast<u16>(taken);
      slot.cost_not_taken = static_cast<u16>(not_taken);
      slot.kind = SlotKind::Valid;
    } else {
      slot.kind = SlotKind::Undefined;
    }
  }
  if (superblocks && words > 0) {
    // Build runs backward so each slot extends its successor's run. Every
    // slot inside a run carries the length and suffix cycle sum to the run's
    // end, which keeps the partial-cost formula (see FuseRun) exact even
    // when execution enters a run mid-way (branch targets need no special
    // casing: a jump into the middle of a run just sees a shorter run).
    fuse_.resize(words);
    for (size_t i = words; i-- > 0;) {
      const DecodedSlot& slot = slots_[i];
      if (slot.kind != SlotKind::Valid || !fusible_in_superblock(slot.instr)) {
        continue;  // stays {0, 0}: terminates any run arriving from below
      }
      const FuseRun next = (i + 1 < words) ? fuse_[i + 1] : FuseRun{};
      fuse_[i].len = next.len + 1;
      fuse_[i].cycles = next.cycles + slot.cost_taken;
    }
  }
}

void DecodedImage::invalidate(Address addr, u32 size) {
  if (addr >= end_ || addr + size <= base_) return;
  const Address lo = addr > base_ ? addr : base_;
  const Address hi = addr + size < end_ ? addr + size : end_;
  const size_t first = (lo - base_) >> 2;
  const size_t last = (hi - base_ + 3) >> 2;  // exclusive, rounded up
  for (size_t i = first; i < last && i < slots_.size(); ++i) {
    if (slots_[i].kind != SlotKind::Undecoded) {
      slots_[i].kind = SlotKind::Undecoded;
      ++invalidations_;
    }
    if (!fuse_.empty()) fuse_[i] = {};
  }
  if (fuse_.empty()) return;
  // Truncate every fused run that crossed into the invalidated range: walk
  // backward from `first`, shortening each run to end there and rebuilding
  // its suffix cycle sum from the (already rewritten) successor. Runs are
  // uncapped, so `len > first - j` identifies exactly the runs that reach
  // the range, and the walk stops at the first run that ends before it —
  // all earlier runs end at the same or an earlier non-fusible slot.
  for (size_t j = first; j-- > 0;) {
    if (fuse_[j].len <= first - j) break;
    fuse_[j].len = static_cast<u32>(first - j);
    fuse_[j].cycles = slots_[j].cost_taken + fuse_[j + 1].cycles;
  }
}

}  // namespace raptrack::isa
