#include "isa/decoded_image.hpp"

#include "common/hex.hpp"

namespace raptrack::isa {

DecodedImage::DecodedImage(Address base, std::span<const u8> bytes,
                           const CycleModel& model) {
  if (base % 4 != 0) {
    throw Error("DecodedImage: base " + hex32(base) + " is not word-aligned");
  }
  base_ = base;
  const size_t words = bytes.size() / 4;
  end_ = base_ + static_cast<Address>(words * 4);
  slots_.resize(words);
  for (size_t i = 0; i < words; ++i) {
    u32 word = 0;
    for (u32 b = 0; b < 4; ++b) {
      word |= static_cast<u32>(bytes[i * 4 + b]) << (8 * b);
    }
    DecodedSlot& slot = slots_[i];
    slot.raw = word;
    if (const auto decoded = decode(word)) {
      const Cycles taken = model.cost(*decoded, true);
      const Cycles not_taken = model.cost(*decoded, false);
      if (taken > 0xffff || not_taken > 0xffff) {
        // Cost does not fit the packed slot (absurd custom model): leave the
        // slot Undecoded so the decode-per-step path charges the exact value.
        continue;
      }
      slot.instr = *decoded;
      slot.cost_taken = static_cast<u16>(taken);
      slot.cost_not_taken = static_cast<u16>(not_taken);
      slot.kind = SlotKind::Valid;
    } else {
      slot.kind = SlotKind::Undefined;
    }
  }
}

void DecodedImage::invalidate(Address addr, u32 size) {
  if (addr >= end_ || addr + size <= base_) return;
  const Address lo = addr > base_ ? addr : base_;
  const Address hi = addr + size < end_ ? addr + size : end_;
  const size_t first = (lo - base_) >> 2;
  const size_t last = (hi - base_ + 3) >> 2;  // exclusive, rounded up
  for (size_t i = first; i < last && i < slots_.size(); ++i) {
    if (slots_[i].kind != SlotKind::Undecoded) {
      slots_[i].kind = SlotKind::Undecoded;
      ++invalidations_;
    }
  }
}

}  // namespace raptrack::isa
