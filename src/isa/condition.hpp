// ARM-style condition codes and their evaluation against NZCV flags.
#pragma once

#include <optional>
#include <string_view>

#include "common/types.hpp"
#include "isa/registers.hpp"

namespace raptrack::isa {

enum class Cond : u8 {
  EQ = 0x0,  ///< Z == 1
  NE = 0x1,  ///< Z == 0
  CS = 0x2,  ///< C == 1 (unsigned >=)
  CC = 0x3,  ///< C == 0 (unsigned <)
  MI = 0x4,  ///< N == 1
  PL = 0x5,  ///< N == 0
  VS = 0x6,  ///< V == 1
  VC = 0x7,  ///< V == 0
  HI = 0x8,  ///< C && !Z (unsigned >)
  LS = 0x9,  ///< !C || Z (unsigned <=)
  GE = 0xa,  ///< N == V
  LT = 0xb,  ///< N != V
  GT = 0xc,  ///< !Z && N == V
  LE = 0xd,  ///< Z || N != V
  AL = 0xe,  ///< always
};

constexpr bool evaluate(Cond cond, const Flags& f) {
  switch (cond) {
    case Cond::EQ: return f.z;
    case Cond::NE: return !f.z;
    case Cond::CS: return f.c;
    case Cond::CC: return !f.c;
    case Cond::MI: return f.n;
    case Cond::PL: return !f.n;
    case Cond::VS: return f.v;
    case Cond::VC: return !f.v;
    case Cond::HI: return f.c && !f.z;
    case Cond::LS: return !f.c || f.z;
    case Cond::GE: return f.n == f.v;
    case Cond::LT: return f.n != f.v;
    case Cond::GT: return !f.z && f.n == f.v;
    case Cond::LE: return f.z || f.n != f.v;
    case Cond::AL: return true;
  }
  return false;
}

/// Logical inverse (EQ<->NE, ...). AL has no inverse; returns AL.
constexpr Cond invert(Cond cond) {
  if (cond == Cond::AL) return Cond::AL;
  return static_cast<Cond>(static_cast<u8>(cond) ^ 1u);
}

constexpr std::string_view suffix(Cond cond) {
  switch (cond) {
    case Cond::EQ: return "eq";
    case Cond::NE: return "ne";
    case Cond::CS: return "cs";
    case Cond::CC: return "cc";
    case Cond::MI: return "mi";
    case Cond::PL: return "pl";
    case Cond::VS: return "vs";
    case Cond::VC: return "vc";
    case Cond::HI: return "hi";
    case Cond::LS: return "ls";
    case Cond::GE: return "ge";
    case Cond::LT: return "lt";
    case Cond::GT: return "gt";
    case Cond::LE: return "le";
    case Cond::AL: return "";
  }
  return "";
}

/// Parse a two-letter condition suffix; nullopt when not a condition.
std::optional<Cond> cond_from_suffix(std::string_view s);

}  // namespace raptrack::isa
