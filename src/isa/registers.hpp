// Register file definition for RT-ISA, the ARMv8-M-flavoured instruction set
// used by the simulator. Mirrors the Cortex-M register model: R0-R12 general
// purpose, R13=SP, R14=LR (link register), R15=PC.
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"

namespace raptrack::isa {

enum class Reg : u8 {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
  SP = 13,
  LR = 14,
  PC = 15,
};

constexpr unsigned kNumRegs = 16;

constexpr u8 index(Reg r) { return static_cast<u8>(r); }
constexpr Reg reg_from_index(u8 i) { return static_cast<Reg>(i & 0xf); }

constexpr std::array<std::string_view, kNumRegs> kRegNames = {
    "r0", "r1", "r2", "r3", "r4",  "r5",  "r6",  "r7",
    "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"};

constexpr std::string_view name(Reg r) { return kRegNames[index(r)]; }

/// Condition flags (APSR.NZCV).
struct Flags {
  bool n = false;  ///< negative
  bool z = false;  ///< zero
  bool c = false;  ///< carry / not-borrow
  bool v = false;  ///< signed overflow

  friend bool operator==(const Flags&, const Flags&) = default;
};

}  // namespace raptrack::isa
