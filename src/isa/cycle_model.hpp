// Cortex-M33-style cycle cost model. The absolute values approximate the
// ARMv8-M TRM figures (3-stage pipeline: most ALU ops 1 cycle, loads/stores
// 2, taken branches pay a pipeline refill); the comparisons in the paper's
// figures depend only on the relative costs of instruction classes and of
// Secure-World transitions, both of which are explicit here.
#pragma once

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace raptrack::isa {

struct CycleModel {
  Cycles alu = 1;             ///< data processing, moves, compares
  Cycles mul = 1;             ///< single-cycle multiplier (M33)
  Cycles divide = 6;          ///< UDIV/SDIV: 2-11 on M33, mid-point
  Cycles load = 2;            ///< LDR* (zero-wait-state SRAM/flash)
  Cycles store = 2;           ///< STR*
  Cycles stack_base = 1;      ///< PUSH/POP base cost ...
  Cycles stack_per_reg = 1;   ///< ... plus one per transferred register
  Cycles branch_taken = 3;    ///< pipeline refill on any taken branch
  Cycles branch_not_taken = 1;
  Cycles call = 4;            ///< BL/BLX: branch + LR write
  Cycles pop_pc_extra = 2;    ///< extra refill when POP writes PC
  Cycles nop = 1;
  Cycles svc_trap = 12;       ///< exception entry (stacking) before monitor cost

  /// Cycles for one executed instruction. `taken` applies to branches
  /// (conditional or otherwise); callers pass true for unconditional ones.
  Cycles cost(const Instruction& instr, bool taken) const;
};

}  // namespace raptrack::isa
