// Decoded instruction representation plus the encoder/decoder between the
// 32-bit RT-ISA word format and this struct. The rewriting passes
// (RAP-Track trampolines, TRACES instrumentation) operate on decoded
// instructions and re-encode, exactly like the paper's offline phase operates
// on post-compiled binaries.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"
#include "isa/condition.hpp"
#include "isa/opcodes.hpp"
#include "isa/registers.hpp"

namespace raptrack::isa {

struct Instruction {
  Op op = Op::NOP;
  Reg rd = Reg::R0;
  Reg rn = Reg::R0;
  Reg rm = Reg::R0;
  Cond cond = Cond::AL;   ///< BCC only
  bool set_flags = false; ///< ALU ops: update NZCV ("s" suffix)
  i32 imm = 0;            ///< imm8/imm12/imm16/branch byte offset (signed)
  u8 shift = 0;           ///< MemReg scale (offset = rm << shift)
  u16 reg_list = 0;       ///< PUSH/POP mask (bit14 = LR, bit15 = PC)

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encode to the 32-bit word format. Throws Error when a field is out of
/// range (e.g. branch offset too large).
u32 encode(const Instruction& instr);

/// Decode a 32-bit word. Returns nullopt for invalid opcodes.
std::optional<Instruction> decode(u32 word);

// ---------------------------------------------------------------------------
// Control-flow classification — the vocabulary of the RAP-Track offline phase.
// ---------------------------------------------------------------------------

/// How an instruction can redirect control flow.
enum class BranchKind : u8 {
  None,            ///< not a control-flow instruction
  Direct,          ///< B — statically fixed target
  DirectCall,      ///< BL — statically fixed target, writes LR
  Conditional,     ///< BCC — two static targets, data-dependent choice
  IndirectCall,    ///< BLX rm
  IndirectJump,    ///< BX rm (rm != LR), LDR pc, LDRR pc
  Return,          ///< BX LR or POP {...,pc}
  Halt,            ///< HLT / BKPT
};

/// Classify the decoded instruction. `POP {…,pc}` and `LDR pc, …` are
/// returns / indirect jumps per §IV-C of the paper.
BranchKind branch_kind(const Instruction& instr);

/// True for kinds whose *destination* is not statically known (the paper's
/// "non-deterministic branches": indirect jumps/calls, returns, conditional
/// branches). Direct branches and calls are deterministic.
bool is_nondeterministic(BranchKind kind);

/// Static target of a direct/conditional branch located at `address`.
/// (Branch offsets are relative to address+4, the next instruction.)
Address branch_target(const Instruction& instr, Address address);

/// Build common instructions (used by rewriters and tests).
Instruction make_nop();
Instruction make_branch(Op op, i32 byte_offset);                 // B/BL
Instruction make_cond_branch(Cond cond, i32 byte_offset);        // BCC
Instruction make_reg_branch(Op op, Reg rm);                      // BX/BLX
Instruction make_svc(u8 code);

/// Byte offset for a branch at `from` targeting `to`.
i32 branch_offset(Address from, Address to);

/// Render one instruction as assembly text (round-trips through the
/// assembler; labels are rendered as numeric offsets).
std::string to_string(const Instruction& instr);

}  // namespace raptrack::isa
