#include "isa/cycle_model.hpp"

#include <bit>

namespace raptrack::isa {

Cycles CycleModel::cost(const Instruction& in, bool taken) const {
  switch (in.op) {
    case Op::NOP:
      return nop;
    case Op::HLT:
    case Op::BKPT:
      return nop;
    case Op::SVC:
      return svc_trap;
    case Op::MUL:
      return mul;
    case Op::UDIV:
    case Op::SDIV:
      return divide;
    case Op::LDR:
    case Op::LDRB:
    case Op::LDRH:
    case Op::LDRR: {
      Cycles c = load;
      if (in.rd == Reg::PC) c += branch_taken;  // indirect jump via load
      return c;
    }
    case Op::STR:
    case Op::STRB:
    case Op::STRH:
    case Op::STRR:
      return store;
    case Op::PUSH:
    case Op::POP: {
      const auto regs = static_cast<Cycles>(std::popcount(in.reg_list));
      Cycles c = stack_base + stack_per_reg * regs;
      if (in.op == Op::POP && (in.reg_list & 0x8000u)) c += pop_pc_extra;
      return c;
    }
    case Op::B:
      return branch_taken;
    case Op::BCC:
      return taken ? branch_taken : branch_not_taken;
    case Op::BL:
    case Op::BLX:
      return call;
    case Op::BX:
      return branch_taken;
    default:
      return alu;
  }
}

}  // namespace raptrack::isa
