// RT-ISA opcode space. The ISA is a fixed-width 32-bit encoding with
// ARMv8-M Thumb semantics: it keeps the control-flow idioms RAP-Track cares
// about (BL/BX/BLX, POP {…,PC}, LDR into PC, conditional branches with
// NZCV flags) while staying trivially decodable.
//
// Encoding layout (bits [31:24] = opcode, remaining fields per format):
//   AluReg : rd[23:20] rn[19:16] rm[15:12]          S=bit 0
//   AluImm : rd[23:20] rn[19:16] S=bit12            imm12[11:0] (signed)
//   Mov16  : rd[23:20] imm16[15:0]                  (MOVI zero-extends, MOVT top)
//   MemImm : rd[23:20] rn[19:16] imm12[11:0]        (signed byte offset)
//   MemReg : rd[23:20] rn[19:16] rm[15:12] sh[11:8] (offset = rm << sh)
//   RegList: mask16[15:0]  (bit i = Ri; bit14 = LR; bit15 = PC)
//   Branch : imm24[23:0]   signed word offset from pc+4
//   CondBr : cond[23:20] imm20[19:0] signed word offset from pc+4
//   RegBr  : rm[15:12]
//   Sys    : imm8[7:0]
#pragma once

#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace raptrack::isa {

enum class Op : u8 {
  // System.
  NOP = 0x00,
  HLT = 0x01,   ///< end of program (simulator halt)
  BKPT = 0x02,  ///< breakpoint / debug trap
  SVC = 0x03,   ///< supervisor call -> Secure World gateway (TrustZone model)

  // Moves.
  MOVI = 0x10,  ///< rd = zero_extend(imm16)
  MOVT = 0x11,  ///< rd[31:16] = imm16
  MOV = 0x12,   ///< rd = rm
  MVN = 0x13,   ///< rd = ~rm

  // ALU, register operand.
  ADD = 0x20, SUB = 0x21, RSB = 0x22, MUL = 0x23,
  UDIV = 0x24, SDIV = 0x25,
  AND = 0x26, ORR = 0x27, EOR = 0x28,
  LSL = 0x29, LSR = 0x2a, ASR = 0x2b,

  // ALU, immediate operand.
  ADDI = 0x30, SUBI = 0x31, RSBI = 0x32,
  ANDI = 0x33, ORRI = 0x34, EORI = 0x35,
  LSLI = 0x36, LSRI = 0x37, ASRI = 0x38,

  // Compares (always set flags).
  CMP = 0x40, CMPI = 0x41, CMN = 0x42, TST = 0x43, TSTI = 0x44,

  // Memory.
  LDR = 0x50, STR = 0x51,
  LDRB = 0x52, STRB = 0x53,
  LDRH = 0x54, STRH = 0x55,
  LDRR = 0x56,  ///< rd = [rn + (rm << sh)]  (rd may be PC: indirect jump)
  STRR = 0x57,

  // Stack.
  PUSH = 0x60, POP = 0x61,  ///< POP with PC bit set is a return/indirect jump

  // Branches.
  B = 0x70,     ///< direct branch
  BCC = 0x71,   ///< conditional direct branch
  BL = 0x72,    ///< direct call (LR = return address)
  BX = 0x73,    ///< indirect branch to rm (BX LR = leaf return)
  BLX = 0x74,   ///< indirect call to rm
};

/// Operand format family; drives encode/decode and the assembler grammar.
enum class Format : u8 {
  Sys,      // NOP/HLT/BKPT/SVC
  Mov16,    // MOVI/MOVT
  AluReg,   // MOV/MVN/ADD/.../ASR, CMP/CMN/TST
  AluImm,   // ADDI/.../ASRI, CMPI/TSTI
  MemImm,   // LDR/STR/LDRB/...
  MemReg,   // LDRR/STRR
  RegList,  // PUSH/POP
  Branch,   // B/BL
  CondBr,   // BCC
  RegBr,    // BX/BLX
};

struct OpInfo {
  Op op;
  std::string_view mnemonic;
  Format format;
};

/// Table lookup: metadata for a decoded opcode byte; nullopt if invalid.
std::optional<OpInfo> op_info(u8 opcode_byte);

/// Reverse lookup by mnemonic (without condition suffix). nullopt if unknown.
std::optional<OpInfo> op_info(std::string_view mnemonic);

constexpr Format format_of(Op op) {
  switch (op) {
    case Op::NOP: case Op::HLT: case Op::BKPT: case Op::SVC:
      return Format::Sys;
    case Op::MOVI: case Op::MOVT:
      return Format::Mov16;
    case Op::MOV: case Op::MVN:
    case Op::ADD: case Op::SUB: case Op::RSB: case Op::MUL:
    case Op::UDIV: case Op::SDIV:
    case Op::AND: case Op::ORR: case Op::EOR:
    case Op::LSL: case Op::LSR: case Op::ASR:
    case Op::CMP: case Op::CMN: case Op::TST:
      return Format::AluReg;
    case Op::ADDI: case Op::SUBI: case Op::RSBI:
    case Op::ANDI: case Op::ORRI: case Op::EORI:
    case Op::LSLI: case Op::LSRI: case Op::ASRI:
    case Op::CMPI: case Op::TSTI:
      return Format::AluImm;
    case Op::LDR: case Op::STR: case Op::LDRB: case Op::STRB:
    case Op::LDRH: case Op::STRH:
      return Format::MemImm;
    case Op::LDRR: case Op::STRR:
      return Format::MemReg;
    case Op::PUSH: case Op::POP:
      return Format::RegList;
    case Op::B: case Op::BL:
      return Format::Branch;
    case Op::BCC:
      return Format::CondBr;
    case Op::BX: case Op::BLX:
      return Format::RegBr;
  }
  return Format::Sys;
}

constexpr bool is_compare(Op op) {
  return op == Op::CMP || op == Op::CMPI || op == Op::CMN || op == Op::TST ||
         op == Op::TSTI;
}

constexpr bool is_load(Op op) {
  return op == Op::LDR || op == Op::LDRB || op == Op::LDRH || op == Op::LDRR;
}

constexpr bool is_store(Op op) {
  return op == Op::STR || op == Op::STRB || op == Op::STRH || op == Op::STRR;
}

constexpr u32 kInstrBytes = 4;  ///< every RT-ISA instruction is one word

}  // namespace raptrack::isa
