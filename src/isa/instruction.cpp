#include "isa/instruction.hpp"

#include <array>
#include <cstdio>

#include "common/bits.hpp"
#include "common/hex.hpp"

namespace raptrack::isa {

namespace {

constexpr std::array<OpInfo, 49> kOpTable = {{
    {Op::NOP, "nop", Format::Sys},
    {Op::HLT, "hlt", Format::Sys},
    {Op::BKPT, "bkpt", Format::Sys},
    {Op::SVC, "svc", Format::Sys},
    {Op::MOVI, "movi", Format::Mov16},
    {Op::MOVT, "movt", Format::Mov16},
    {Op::MOV, "mov", Format::AluReg},
    {Op::MVN, "mvn", Format::AluReg},
    {Op::ADD, "add", Format::AluReg},
    {Op::SUB, "sub", Format::AluReg},
    {Op::RSB, "rsb", Format::AluReg},
    {Op::MUL, "mul", Format::AluReg},
    {Op::UDIV, "udiv", Format::AluReg},
    {Op::SDIV, "sdiv", Format::AluReg},
    {Op::AND, "and", Format::AluReg},
    {Op::ORR, "orr", Format::AluReg},
    {Op::EOR, "eor", Format::AluReg},
    {Op::LSL, "lsl", Format::AluReg},
    {Op::LSR, "lsr", Format::AluReg},
    {Op::ASR, "asr", Format::AluReg},
    {Op::ADDI, "addi", Format::AluImm},
    {Op::SUBI, "subi", Format::AluImm},
    {Op::RSBI, "rsbi", Format::AluImm},
    {Op::ANDI, "andi", Format::AluImm},
    {Op::ORRI, "orri", Format::AluImm},
    {Op::EORI, "eori", Format::AluImm},
    {Op::LSLI, "lsli", Format::AluImm},
    {Op::LSRI, "lsri", Format::AluImm},
    {Op::ASRI, "asri", Format::AluImm},
    {Op::CMP, "cmp", Format::AluReg},
    {Op::CMPI, "cmpi", Format::AluImm},
    {Op::CMN, "cmn", Format::AluReg},
    {Op::TST, "tst", Format::AluReg},
    {Op::TSTI, "tsti", Format::AluImm},
    {Op::LDR, "ldr", Format::MemImm},
    {Op::STR, "str", Format::MemImm},
    {Op::LDRB, "ldrb", Format::MemImm},
    {Op::STRB, "strb", Format::MemImm},
    {Op::LDRH, "ldrh", Format::MemImm},
    {Op::STRH, "strh", Format::MemImm},
    {Op::LDRR, "ldrr", Format::MemReg},
    {Op::STRR, "strr", Format::MemReg},
    {Op::PUSH, "push", Format::RegList},
    {Op::POP, "pop", Format::RegList},
    {Op::B, "b", Format::Branch},
    {Op::BCC, "bcc", Format::CondBr},
    {Op::BL, "bl", Format::Branch},
    {Op::BX, "bx", Format::RegBr},
    {Op::BLX, "blx", Format::RegBr},
}};

}  // namespace

std::optional<OpInfo> op_info(u8 opcode_byte) {
  for (const auto& info : kOpTable) {
    if (static_cast<u8>(info.op) == opcode_byte) return info;
  }
  return std::nullopt;
}

std::optional<OpInfo> op_info(std::string_view mnemonic) {
  for (const auto& info : kOpTable) {
    if (info.mnemonic == mnemonic) return info;
  }
  return std::nullopt;
}

std::optional<Cond> cond_from_suffix(std::string_view s) {
  for (u8 c = 0; c <= static_cast<u8>(Cond::LE); ++c) {
    if (suffix(static_cast<Cond>(c)) == s) return static_cast<Cond>(c);
  }
  if (s == "al") return Cond::AL;
  return std::nullopt;
}

u32 encode(const Instruction& in) {
  u32 word = static_cast<u32>(in.op) << 24;
  const auto require = [&](bool ok, const char* what) {
    if (!ok) throw Error(std::string("encode: field out of range: ") + what);
  };
  switch (format_of(in.op)) {
    case Format::Sys:
      require(fits_unsigned(static_cast<u32>(in.imm), 8), "imm8");
      word = set_bits(word, 7, 0, static_cast<u32>(in.imm));
      break;
    case Format::Mov16:
      require(fits_unsigned(static_cast<u32>(in.imm), 16), "imm16");
      word = set_bits(word, 23, 20, index(in.rd));
      word = set_bits(word, 15, 0, static_cast<u32>(in.imm));
      break;
    case Format::AluReg:
      word = set_bits(word, 23, 20, index(in.rd));
      word = set_bits(word, 19, 16, index(in.rn));
      word = set_bits(word, 15, 12, index(in.rm));
      word = set_bits(word, 0, 0, in.set_flags ? 1 : 0);
      break;
    case Format::AluImm:
      require(fits_signed(in.imm, 12), "imm12");
      word = set_bits(word, 23, 20, index(in.rd));
      word = set_bits(word, 19, 16, index(in.rn));
      word = set_bits(word, 12, 12, in.set_flags ? 1 : 0);
      word = set_bits(word, 11, 0, static_cast<u32>(in.imm));
      break;
    case Format::MemImm:
      require(fits_signed(in.imm, 12), "mem imm12");
      word = set_bits(word, 23, 20, index(in.rd));
      word = set_bits(word, 19, 16, index(in.rn));
      word = set_bits(word, 11, 0, static_cast<u32>(in.imm));
      break;
    case Format::MemReg:
      require(in.shift <= 3, "shift");
      word = set_bits(word, 23, 20, index(in.rd));
      word = set_bits(word, 19, 16, index(in.rn));
      word = set_bits(word, 15, 12, index(in.rm));
      word = set_bits(word, 11, 8, in.shift);
      break;
    case Format::RegList:
      word = set_bits(word, 15, 0, in.reg_list);
      break;
    case Format::Branch: {
      require(in.imm % 4 == 0, "branch alignment");
      const i32 words = in.imm / 4;
      require(fits_signed(words, 24), "branch offset");
      word = set_bits(word, 23, 0, static_cast<u32>(words));
      break;
    }
    case Format::CondBr: {
      require(in.imm % 4 == 0, "branch alignment");
      const i32 words = in.imm / 4;
      require(fits_signed(words, 20), "cond branch offset");
      word = set_bits(word, 23, 20, static_cast<u8>(in.cond));
      word = set_bits(word, 19, 0, static_cast<u32>(words));
      break;
    }
    case Format::RegBr:
      word = set_bits(word, 15, 12, index(in.rm));
      break;
  }
  return word;
}

std::optional<Instruction> decode(u32 word) {
  const auto info = op_info(static_cast<u8>(word >> 24));
  if (!info) return std::nullopt;
  Instruction in;
  in.op = info->op;
  switch (info->format) {
    case Format::Sys:
      in.imm = static_cast<i32>(bits(word, 7, 0));
      break;
    case Format::Mov16:
      in.rd = reg_from_index(static_cast<u8>(bits(word, 23, 20)));
      in.imm = static_cast<i32>(bits(word, 15, 0));
      break;
    case Format::AluReg:
      in.rd = reg_from_index(static_cast<u8>(bits(word, 23, 20)));
      in.rn = reg_from_index(static_cast<u8>(bits(word, 19, 16)));
      in.rm = reg_from_index(static_cast<u8>(bits(word, 15, 12)));
      in.set_flags = bit(word, 0);
      break;
    case Format::AluImm:
      in.rd = reg_from_index(static_cast<u8>(bits(word, 23, 20)));
      in.rn = reg_from_index(static_cast<u8>(bits(word, 19, 16)));
      in.set_flags = bit(word, 12);
      in.imm = sign_extend(bits(word, 11, 0), 12);
      break;
    case Format::MemImm:
      in.rd = reg_from_index(static_cast<u8>(bits(word, 23, 20)));
      in.rn = reg_from_index(static_cast<u8>(bits(word, 19, 16)));
      in.imm = sign_extend(bits(word, 11, 0), 12);
      break;
    case Format::MemReg:
      in.rd = reg_from_index(static_cast<u8>(bits(word, 23, 20)));
      in.rn = reg_from_index(static_cast<u8>(bits(word, 19, 16)));
      in.rm = reg_from_index(static_cast<u8>(bits(word, 15, 12)));
      in.shift = static_cast<u8>(bits(word, 11, 8));
      break;
    case Format::RegList:
      in.reg_list = static_cast<u16>(bits(word, 15, 0));
      break;
    case Format::Branch:
      in.imm = sign_extend(bits(word, 23, 0), 24) * 4;
      break;
    case Format::CondBr:
      in.cond = static_cast<Cond>(bits(word, 23, 20));
      in.imm = sign_extend(bits(word, 19, 0), 20) * 4;
      break;
    case Format::RegBr:
      in.rm = reg_from_index(static_cast<u8>(bits(word, 15, 12)));
      break;
  }
  // Compares always set flags regardless of encoding bit.
  if (is_compare(in.op)) in.set_flags = true;
  return in;
}

BranchKind branch_kind(const Instruction& in) {
  switch (in.op) {
    case Op::B: return BranchKind::Direct;
    case Op::BL: return BranchKind::DirectCall;
    case Op::BCC: return BranchKind::Conditional;
    case Op::BLX: return BranchKind::IndirectCall;
    case Op::BX:
      return in.rm == Reg::LR ? BranchKind::Return : BranchKind::IndirectJump;
    case Op::POP:
      return bit(in.reg_list, 15) ? BranchKind::Return : BranchKind::None;
    case Op::LDR:
    case Op::LDRR:
      return in.rd == Reg::PC ? BranchKind::IndirectJump : BranchKind::None;
    case Op::HLT:
    case Op::BKPT:
      return BranchKind::Halt;
    default:
      return BranchKind::None;
  }
}

bool is_nondeterministic(BranchKind kind) {
  switch (kind) {
    case BranchKind::Conditional:
    case BranchKind::IndirectCall:
    case BranchKind::IndirectJump:
    case BranchKind::Return:
      return true;
    default:
      return false;
  }
}

Address branch_target(const Instruction& in, Address address) {
  return address + 4 + static_cast<u32>(in.imm);
}

Instruction make_nop() { return Instruction{}; }

Instruction make_branch(Op op, i32 byte_offset) {
  Instruction in;
  in.op = op;
  in.imm = byte_offset;
  return in;
}

Instruction make_cond_branch(Cond cond, i32 byte_offset) {
  Instruction in;
  in.op = Op::BCC;
  in.cond = cond;
  in.imm = byte_offset;
  return in;
}

Instruction make_reg_branch(Op op, Reg rm) {
  Instruction in;
  in.op = op;
  in.rm = rm;
  return in;
}

Instruction make_svc(u8 code) {
  Instruction in;
  in.op = Op::SVC;
  in.imm = code;
  return in;
}

i32 branch_offset(Address from, Address to) {
  return static_cast<i32>(to) - static_cast<i32>(from) - 4;
}

std::string to_string(const Instruction& in) {
  const auto info = op_info(static_cast<u8>(in.op));
  std::string out(info ? info->mnemonic : "???");
  char buf[64];
  switch (format_of(in.op)) {
    case Format::Sys:
      if (in.op == Op::SVC) {
        std::snprintf(buf, sizeof buf, " #%d", in.imm);
        out += buf;
      }
      break;
    case Format::Mov16:
      std::snprintf(buf, sizeof buf, " %s, #0x%x", name(in.rd).data(),
                    static_cast<u32>(in.imm));
      out += buf;
      break;
    case Format::AluReg:
      if (in.set_flags && !is_compare(in.op)) out += 's';
      if (in.op == Op::MOV || in.op == Op::MVN) {
        std::snprintf(buf, sizeof buf, " %s, %s", name(in.rd).data(),
                      name(in.rm).data());
      } else if (is_compare(in.op)) {
        std::snprintf(buf, sizeof buf, " %s, %s", name(in.rn).data(),
                      name(in.rm).data());
      } else {
        std::snprintf(buf, sizeof buf, " %s, %s, %s", name(in.rd).data(),
                      name(in.rn).data(), name(in.rm).data());
      }
      out += buf;
      break;
    case Format::AluImm:
      if (in.set_flags && !is_compare(in.op)) out += 's';
      if (is_compare(in.op)) {
        std::snprintf(buf, sizeof buf, " %s, #%d", name(in.rn).data(), in.imm);
      } else {
        std::snprintf(buf, sizeof buf, " %s, %s, #%d", name(in.rd).data(),
                      name(in.rn).data(), in.imm);
      }
      out += buf;
      break;
    case Format::MemImm:
      std::snprintf(buf, sizeof buf, " %s, [%s, #%d]", name(in.rd).data(),
                    name(in.rn).data(), in.imm);
      out += buf;
      break;
    case Format::MemReg:
      std::snprintf(buf, sizeof buf, " %s, [%s, %s, lsl #%u]",
                    name(in.rd).data(), name(in.rn).data(), name(in.rm).data(),
                    in.shift);
      out += buf;
      break;
    case Format::RegList: {
      out += " {";
      bool first = true;
      for (unsigned i = 0; i < 16; ++i) {
        if (!bit(in.reg_list, i)) continue;
        if (!first) out += ", ";
        out += name(static_cast<Reg>(i));
        first = false;
      }
      out += '}';
      break;
    }
    case Format::Branch:
      std::snprintf(buf, sizeof buf, " .%+d", in.imm);
      out += buf;
      break;
    case Format::CondBr:
      out = "b";
      out += suffix(in.cond);
      std::snprintf(buf, sizeof buf, " .%+d", in.imm);
      out += buf;
      break;
    case Format::RegBr:
      std::snprintf(buf, sizeof buf, " %s", name(in.rm).data());
      out += buf;
      break;
  }
  return out;
}

}  // namespace raptrack::isa
