// Predecoded instruction cache for the simulator's fast path. A loaded
// program region is lowered once into a dense array of Instruction records
// indexed by (pc - base) / 4, built at H_MEM time — after the NS-MPU locks
// APP memory, when the code is provably immutable. Words that do not decode
// are marked Undefined so the fast loop can report the same UndefinedInstr
// fault as the decode-per-step oracle without throwing through the hot loop.
// Any store into the region (pre-lock phases, SEU injectors writing near
// code) must call invalidate(), which drops the affected slots back to
// Undecoded; the executor then falls back to the decode-per-step path for
// those addresses, keeping fault-injection semantics bit-identical.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/cycle_model.hpp"
#include "isa/instruction.hpp"

namespace raptrack::isa {

/// Lifecycle state of one 4-byte instruction slot.
enum class SlotKind : u8 {
  Undecoded,  ///< invalidated by a write — use the decode-per-step path
  Valid,      ///< `instr` is the decode of the word that was at this address
  Undefined,  ///< word does not decode: executing here is an UndefinedInstr
};

/// 32-byte-aligned so two slots share each cache line and a slot never
/// straddles one — the fast loop's slot load is the hottest read in the
/// simulator. Costs are stored as u16 (real models top out at ~20 cycles);
/// predecode falls a slot back to Undecoded if a configured model ever
/// exceeds that, trading speed for exactness on that slot only.
struct alignas(32) DecodedSlot {
  Instruction instr{};
  u32 raw = 0;  ///< the raw word (fault messages for Undefined slots)
  /// CycleModel::cost() evaluated at predecode time for both branch
  /// outcomes (they only differ for BCC), so the fast loop charges cycles
  /// with a select instead of re-walking the opcode switch per instruction.
  u16 cost_taken = 0;
  u16 cost_not_taken = 0;
  SlotKind kind = SlotKind::Undecoded;
};
static_assert(sizeof(DecodedSlot) == 32);

/// Superblock metadata for one slot: the length (in instructions) of the
/// maximal straight-line run of fusible slots headed here, and the total
/// taken-path cycle cost of that run. `cycles` is a suffix sum over the
/// run, so the cost of executing only the first n instructions of a run
/// headed at slot i is `fuse[i].cycles - fuse[i+n].cycles` (the slot one
/// past a maximal run is never fusible, so its entry is zero and the
/// formula holds for n == len too). Kept in a parallel array — not inside
/// DecodedSlot — so the hot per-slot path stays within its 32-byte line and
/// run lengths are not capped by a packed field width.
struct FuseRun {
  u32 len = 0;
  u32 cycles = 0;
};

/// True when `instr` may be absorbed into a fused superblock: pure
/// register/immediate ALU and move/compare work that cannot branch, touch
/// memory or the bus, trap (SVC), halt, or fault. Executing such an
/// instruction always advances pc by 4 and charges its taken-path cost, so
/// a run of them can retire under a single bounds/MPU check with batched
/// cycle accounting. Everything else (branches, loads/stores, PUSH/POP,
/// SVC/HLT/BKPT) terminates a run and stays on the per-slot path.
bool fusible_in_superblock(const Instruction& instr);

class DecodedImage {
 public:
  /// Predecode `bytes` as they sit at `base` (word-aligned; a trailing
  /// partial word is excluded from the cached range). `model` must be the
  /// executing core's cycle model — per-slot costs are baked from it.
  /// `superblocks` additionally builds the fused-run metadata; pass false
  /// to force the per-slot path everywhere (ablation / debugging).
  DecodedImage(Address base, std::span<const u8> bytes,
               const CycleModel& model = {}, bool superblocks = true);

  Address base() const { return base_; }
  Address end() const { return end_; }
  bool contains(Address pc) const { return pc >= base_ && pc < end_; }

  /// Slot for an aligned, contained pc.
  const DecodedSlot& slot(Address pc) const {
    return slots_[(pc - base_) >> 2];
  }

  /// Dense slot array for the executor's pointer-chasing loop. Never
  /// reallocated after construction; invalidate() only flips `kind` fields
  /// in place, so held pointers stay valid (and observe invalidations).
  const DecodedSlot* slots_begin() const { return slots_.data(); }

  /// Parallel superblock array (same indexing as slots_begin()), or nullptr
  /// when the image was built with superblocks disabled. Like the slot
  /// array it is never reallocated; invalidate() rewrites entries in place,
  /// so a held pointer observes truncations.
  const FuseRun* fuse_begin() const {
    return fuse_.empty() ? nullptr : fuse_.data();
  }

  /// Fused run headed at an aligned, contained pc (superblocks enabled).
  const FuseRun& fuse_run(Address pc) const { return fuse_[(pc - base_) >> 2]; }

  /// A write of `size` bytes at `addr` landed somewhere in memory: drop any
  /// overlapping slots to Undecoded. Cheap no-op outside the range. Fused
  /// runs covering an invalidated slot are truncated to end just before it
  /// (their suffix cycle sums are recomputed), so the fast loop re-checks
  /// the written slot per-slot and falls back losslessly.
  void invalidate(Address addr, u32 size);

  size_t slot_count() const { return slots_.size(); }
  u64 invalidations() const { return invalidations_; }

 private:
  Address base_ = 0;
  Address end_ = 0;
  std::vector<DecodedSlot> slots_;
  std::vector<FuseRun> fuse_;
  u64 invalidations_ = 0;
};

}  // namespace raptrack::isa
