// Predecoded instruction cache for the simulator's fast path. A loaded
// program region is lowered once into a dense array of Instruction records
// indexed by (pc - base) / 4, built at H_MEM time — after the NS-MPU locks
// APP memory, when the code is provably immutable. Words that do not decode
// are marked Undefined so the fast loop can report the same UndefinedInstr
// fault as the decode-per-step oracle without throwing through the hot loop.
// Any store into the region (pre-lock phases, SEU injectors writing near
// code) must call invalidate(), which drops the affected slots back to
// Undecoded; the executor then falls back to the decode-per-step path for
// those addresses, keeping fault-injection semantics bit-identical.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/cycle_model.hpp"
#include "isa/instruction.hpp"

namespace raptrack::isa {

/// Lifecycle state of one 4-byte instruction slot.
enum class SlotKind : u8 {
  Undecoded,  ///< invalidated by a write — use the decode-per-step path
  Valid,      ///< `instr` is the decode of the word that was at this address
  Undefined,  ///< word does not decode: executing here is an UndefinedInstr
};

/// 32-byte-aligned so two slots share each cache line and a slot never
/// straddles one — the fast loop's slot load is the hottest read in the
/// simulator. Costs are stored as u16 (real models top out at ~20 cycles);
/// predecode falls a slot back to Undecoded if a configured model ever
/// exceeds that, trading speed for exactness on that slot only.
struct alignas(32) DecodedSlot {
  Instruction instr{};
  u32 raw = 0;  ///< the raw word (fault messages for Undefined slots)
  /// CycleModel::cost() evaluated at predecode time for both branch
  /// outcomes (they only differ for BCC), so the fast loop charges cycles
  /// with a select instead of re-walking the opcode switch per instruction.
  u16 cost_taken = 0;
  u16 cost_not_taken = 0;
  SlotKind kind = SlotKind::Undecoded;
};
static_assert(sizeof(DecodedSlot) == 32);

class DecodedImage {
 public:
  /// Predecode `bytes` as they sit at `base` (word-aligned; a trailing
  /// partial word is excluded from the cached range). `model` must be the
  /// executing core's cycle model — per-slot costs are baked from it.
  DecodedImage(Address base, std::span<const u8> bytes,
               const CycleModel& model = {});

  Address base() const { return base_; }
  Address end() const { return end_; }
  bool contains(Address pc) const { return pc >= base_ && pc < end_; }

  /// Slot for an aligned, contained pc.
  const DecodedSlot& slot(Address pc) const {
    return slots_[(pc - base_) >> 2];
  }

  /// Dense slot array for the executor's pointer-chasing loop. Never
  /// reallocated after construction; invalidate() only flips `kind` fields
  /// in place, so held pointers stay valid (and observe invalidations).
  const DecodedSlot* slots_begin() const { return slots_.data(); }

  /// A write of `size` bytes at `addr` landed somewhere in memory: drop any
  /// overlapping slots to Undecoded. Cheap no-op outside the range.
  void invalidate(Address addr, u32 size);

  size_t slot_count() const { return slots_.size(); }
  u64 invalidations() const { return invalidations_; }

 private:
  Address base_ = 0;
  Address end_ = 0;
  std::vector<DecodedSlot> slots_;
  u64 invalidations_ = 0;
};

}  // namespace raptrack::isa
