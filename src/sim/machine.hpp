// Top-level simulated device: memory map, bus, core, MTB, DWT, Secure-World
// monitor, and an optional ground-truth oracle tracer — the V2M-MPS2+/AN505
// equivalent everything else plugs into.
#pragma once

#include <memory>

#include "asm/program.hpp"
#include "cpu/executor.hpp"
#include "mem/bus.hpp"
#include "mem/memory_map.hpp"
#include "trace/trace_fabric.hpp"
#include "tz/secure_monitor.hpp"

namespace raptrack::sim {

struct MachineConfig {
  u32 mtb_buffer_bytes = 4096;  ///< the paper's MTB has a 4KB limit (§V-B)
  u32 mtb_activation_latency = 2;
  isa::CycleModel cycle_model{};
  tz::CostModel cost_model{};
  bool enable_oracle = true;
  /// Build the predecoded fast-path instruction cache when a session calls
  /// predecode() (normally at H_MEM time, after the NS-MPU lock). Off =
  /// every run takes the decode-per-step oracle path.
  bool fast_path = true;
  /// Fuse straight-line runs of the predecoded image into superblocks that
  /// retire as one unit (see DESIGN.md §17). Off = the fast path executes
  /// strictly per-slot; only meaningful when fast_path is on. The ablation
  /// knob for bench_throughput's fused-vs-slot rows.
  bool superblocks = true;
};

class Machine {
 public:
  explicit Machine(MachineConfig config = {});
  ~Machine();

  mem::MemoryMap& memory() { return memory_; }
  mem::Bus& bus() { return bus_; }
  cpu::Executor& cpu() { return cpu_; }
  trace::Mtb& mtb() { return mtb_; }
  trace::Dwt& dwt() { return dwt_; }
  tz::SecureMonitor& monitor() { return monitor_; }
  const tz::SecureMonitor& monitor() const { return monitor_; }
  trace::OracleTracer& oracle() { return oracle_; }
  const MachineConfig& config() const { return config_; }

  /// Map the MTB and DWT register banks as Secure MMIO (MTB at
  /// 0xf020'0000 as on the AN505 image, DWT at 0xe000'1000 as in the
  /// ARMv8-M system address map). Only the Secure World can touch them —
  /// the §IV-F argument that Adv cannot deactivate or misconfigure tracing.
  void map_trace_registers();

  /// Load a program image into (simulated) flash.
  void load_program(const Program& program);

  /// Reset the core to `entry` with the stack at the top of NS RAM.
  void reset_cpu(Address entry);

  /// Predecode [base, base+size) into the fast-path instruction cache and
  /// arm write-invalidation over the range (any store into it — bus-level
  /// or injector-level — drops the affected lines, so fault-injection
  /// semantics stay bit-identical). Provers call this at H_MEM time, right
  /// after the NS-MPU locks APP memory. No-op when config.fast_path is off.
  void predecode(Address base, u32 size);

  /// Drop the predecode cache and its write watch.
  void drop_predecode();
  const isa::DecodedImage* decoded_image() const { return decoded_.get(); }

  /// Run the loaded application to completion (through the fast path when a
  /// predecoded image is attached, the decode-per-step oracle otherwise).
  /// Flushes the run's execution counters (instructions, fast vs oracle
  /// dispatches, decode-cache invalidations) into the obs registry.
  cpu::HaltReason run(u64 max_instructions = 200'000'000);

 private:
  /// Publish counter deltas since the previous flush. Deltas, not totals:
  /// a machine may run several times per session and the registry counters
  /// are global monotonic accumulators.
  void flush_run_metrics();
  MachineConfig config_;
  mem::MemoryMap memory_;
  mem::Bus bus_;
  cpu::Executor cpu_;
  trace::Mtb mtb_;
  trace::Dwt dwt_;
  trace::TraceFabric fabric_;
  trace::OracleTracer oracle_;
  tz::SecureMonitor monitor_;
  std::unique_ptr<isa::DecodedImage> decoded_;
  int predecode_watch_ = -1;
  // High-water marks of what flush_run_metrics() already published.
  u64 flushed_instructions_ = 0;
  u64 flushed_oracle_ = 0;
  u64 flushed_fused_ = 0;
  u64 flushed_invalidations_ = 0;  ///< against the *current* decoded_ image
};

}  // namespace raptrack::sim
