#include "sim/machine.hpp"

namespace raptrack::sim {

Machine::Machine(MachineConfig config)
    : config_(config),
      memory_(mem::MemoryMap::make_default()),
      bus_(memory_),
      cpu_(bus_, config.cycle_model),
      mtb_(memory_, mem::MapLayout::kMtbSramBase, config.mtb_buffer_bytes),
      dwt_(mtb_),
      fabric_(dwt_, mtb_),
      monitor_(config.cost_model) {
  mtb_.set_activation_latency(config.mtb_activation_latency);
  cpu_.add_sink(&fabric_);
  if (config.enable_oracle) cpu_.add_sink(&oracle_);
  cpu_.set_svc_handler(
      [this](u8 code, cpu::CpuState& state) { return monitor_.handle(code, state); });
}

void Machine::map_trace_registers() {
  mem::MmioHandler mtb_regs;
  mtb_regs.read = [this](Address offset, u32) { return mtb_.read_register(offset); };
  mtb_regs.write = [this](Address offset, u32 value, u32) {
    mtb_.write_register(offset, value);
  };
  memory_.add_mmio("mtb-regs", 0xf020'0000, 0x1000, mem::Security::Secure,
                   std::move(mtb_regs));

  mem::MmioHandler dwt_regs;
  dwt_regs.read = [this](Address offset, u32) { return dwt_.read_register(offset); };
  dwt_regs.write = [this](Address offset, u32 value, u32) {
    dwt_.write_register(offset, value);
  };
  memory_.add_mmio("dwt-regs", 0xe000'1000, 0x1000, mem::Security::Secure,
                   std::move(dwt_regs));
}

void Machine::load_program(const Program& program) {
  memory_.load(program.base(), program.bytes());
}

void Machine::reset_cpu(Address entry) {
  cpu_.reset(entry, mem::MapLayout::kNsRamBase + mem::MapLayout::kNsRamSize);
}

cpu::HaltReason Machine::run(u64 max_instructions) {
  return cpu_.run(max_instructions);
}

}  // namespace raptrack::sim
