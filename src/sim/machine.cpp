#include "sim/machine.hpp"

#include "obs/metrics.hpp"

namespace raptrack::sim {

namespace {

mem::MemoryMap make_machine_map(const MachineConfig& config) {
  mem::MemoryMap map = mem::MemoryMap::make_default();
  // The modeled device's MTB SRAM is 16KB (§V-B), but volume benches
  // configure much larger buffers; size the region to the configured
  // buffer so packet writes can never run off the mapped range. Backing
  // pages are lazily mapped, so an oversized region costs nothing until
  // the log actually grows into it.
  if (config.mtb_buffer_bytes > mem::MapLayout::kMtbSramSize) {
    mem::Region* region = map.find(mem::MapLayout::kMtbSramBase);
    region->size = config.mtb_buffer_bytes;
    region->backing = mem::Backing(config.mtb_buffer_bytes);
  }
  return map;
}

}  // namespace

Machine::Machine(MachineConfig config)
    : config_(config),
      memory_(make_machine_map(config)),
      bus_(memory_),
      cpu_(bus_, config.cycle_model),
      mtb_(memory_, mem::MapLayout::kMtbSramBase, config.mtb_buffer_bytes),
      dwt_(mtb_),
      fabric_(dwt_, mtb_),
      monitor_(config.cost_model) {
  mtb_.set_activation_latency(config.mtb_activation_latency);
  cpu_.add_sink(&fabric_);
  if (config.enable_oracle) cpu_.add_sink(&oracle_);
  cpu_.set_svc_handler(
      [this](u8 code, cpu::CpuState& state) { return monitor_.handle(code, state); });
}

void Machine::map_trace_registers() {
  mem::MmioHandler mtb_regs;
  mtb_regs.read = [this](Address offset, u32) { return mtb_.read_register(offset); };
  mtb_regs.write = [this](Address offset, u32 value, u32) {
    mtb_.write_register(offset, value);
  };
  memory_.add_mmio("mtb-regs", 0xf020'0000, 0x1000, mem::Security::Secure,
                   std::move(mtb_regs));

  mem::MmioHandler dwt_regs;
  dwt_regs.read = [this](Address offset, u32) { return dwt_.read_register(offset); };
  dwt_regs.write = [this](Address offset, u32 value, u32) {
    dwt_.write_register(offset, value);
  };
  memory_.add_mmio("dwt-regs", 0xe000'1000, 0x1000, mem::Security::Secure,
                   std::move(dwt_regs));
}

Machine::~Machine() { drop_predecode(); }

void Machine::load_program(const Program& program) {
  memory_.load(program.base(), program.bytes());
}

void Machine::reset_cpu(Address entry) {
  cpu_.reset(entry, mem::MapLayout::kNsRamBase + mem::MapLayout::kNsRamSize);
  // The executor's retirement counters restart from zero with it.
  flushed_instructions_ = 0;
  flushed_oracle_ = 0;
  flushed_fused_ = 0;
}

void Machine::predecode(Address base, u32 size) {
  if (!config_.fast_path || size < 4) return;
  drop_predecode();
  if constexpr (obs::kEnabled) {
    static obs::Counter builds = obs::registry().counter("sim.predecode_builds");
    builds.inc();
  }
  const auto bytes = memory_.dump(base, size);
  decoded_ = std::make_unique<isa::DecodedImage>(base, bytes, config_.cycle_model,
                                                 config_.superblocks);
  isa::DecodedImage* image = decoded_.get();
  predecode_watch_ = bus_.watch_writes(
      base, size,
      [image](Address addr, u32 bytes_written) {
        image->invalidate(addr, bytes_written);
      });
  cpu_.attach_decoded_image(image);
}

void Machine::drop_predecode() {
  if (!decoded_) return;
  if constexpr (obs::kEnabled) flush_run_metrics();  // last invalidation delta
  flushed_invalidations_ = 0;
  cpu_.detach_decoded_image();
  bus_.unwatch_writes(predecode_watch_);
  predecode_watch_ = -1;
  decoded_.reset();
}

cpu::HaltReason Machine::run(u64 max_instructions) {
  const cpu::HaltReason reason = cpu_.run_fast(max_instructions);
  if constexpr (obs::kEnabled) flush_run_metrics();
  return reason;
}

void Machine::flush_run_metrics() {
  struct Counters {
    obs::Counter instructions = obs::registry().counter("sim.instructions");
    obs::Counter fast = obs::registry().counter("sim.fast_dispatches");
    obs::Counter oracle = obs::registry().counter("sim.oracle_dispatches");
    obs::Counter fused = obs::registry().counter("sim.fused_dispatches");
    obs::Counter invalidations =
        obs::registry().counter("sim.decode_cache_invalidations");
  };
  static Counters counters;  // one registration, process-wide metrics

  const u64 instructions = cpu_.instructions_retired();
  const u64 oracle = cpu_.oracle_dispatches();
  const u64 fused = cpu_.fused_dispatches();
  counters.instructions.inc(instructions - flushed_instructions_);
  counters.oracle.inc(oracle - flushed_oracle_);
  counters.fast.inc((instructions - oracle) -
                    (flushed_instructions_ - flushed_oracle_));
  counters.fused.inc(fused - flushed_fused_);
  flushed_instructions_ = instructions;
  flushed_oracle_ = oracle;
  flushed_fused_ = fused;
  if (decoded_) {
    const u64 invalidations = decoded_->invalidations();
    counters.invalidations.inc(invalidations - flushed_invalidations_);
    flushed_invalidations_ = invalidations;
  }
}

}  // namespace raptrack::sim
