#include "crypto/sha256_mb.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAP_SHA_MB_X86 1
#include <immintrin.h>
#endif

namespace raptrack::crypto {

namespace {

constexpr std::array<u32, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<u32, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

u32 load_be32(const u8* p) {
  return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
         (static_cast<u32>(p[2]) << 8) | static_cast<u32>(p[3]);
}

// Test hook (see sha256_mb_force_lanes): plain value, flipped only from
// single-threaded test setup — same discipline as Sha256::force_scalar.
size_t g_forced_lanes = 0;

size_t detect_lanes() {
#ifdef RAP_SHA_MB_X86
  // SSE2 is baseline x86-64; AVX2 doubles the interleave width.
  return __builtin_cpu_supports("avx2") ? 8 : 4;
#else
  return 1;
#endif
}

#ifdef RAP_SHA_MB_X86

// Structure-of-arrays round function, one message per 32-bit lane. The
// macros mirror the scalar kernel's rotr/sigma expressions; Maj uses the
// or/and form (a&b)|(c&(a|b)), which equals the FIPS xor form and saves an
// op per round on pre-ternary-logic ISAs.

#define MB8_ROTR(x, r) \
  _mm256_or_si256(_mm256_srli_epi32((x), (r)), _mm256_slli_epi32((x), 32 - (r)))
#define MB8_XOR3(x, y, z) _mm256_xor_si256(_mm256_xor_si256((x), (y)), (z))
#define MB8_SIGMA0(x) MB8_XOR3(MB8_ROTR(x, 2), MB8_ROTR(x, 13), MB8_ROTR(x, 22))
#define MB8_SIGMA1(x) MB8_XOR3(MB8_ROTR(x, 6), MB8_ROTR(x, 11), MB8_ROTR(x, 25))
#define MB8_GAMMA0(x) \
  MB8_XOR3(MB8_ROTR(x, 7), MB8_ROTR(x, 18), _mm256_srli_epi32((x), 3))
#define MB8_GAMMA1(x) \
  MB8_XOR3(MB8_ROTR(x, 17), MB8_ROTR(x, 19), _mm256_srli_epi32((x), 10))

__attribute__((target("avx2"))) void compress8_avx2(
    std::array<u32, 8>* const* states, const u8* const* blocks, size_t n) {
  // Gather the blocks and chaining values SoA; lanes past n replicate lane 0
  // into scratch and are never stored back.
  alignas(32) u32 words[16][8];
  alignas(32) u32 chain[8][8];
  for (size_t lane = 0; lane < 8; ++lane) {
    const size_t src = lane < n ? lane : 0;
    for (size_t t = 0; t < 16; ++t) {
      words[t][lane] = load_be32(blocks[src] + 4 * t);
    }
    for (size_t j = 0; j < 8; ++j) chain[j][lane] = (*states[src])[j];
  }

  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_load_si256(reinterpret_cast<const __m256i*>(words[t]));
  }
  __m256i a = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[0]));
  __m256i b = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[1]));
  __m256i c = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[2]));
  __m256i d = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[3]));
  __m256i e = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[4]));
  __m256i f = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[5]));
  __m256i g = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[6]));
  __m256i h = _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[7]));

  for (int t = 0; t < 64; ++t) {
    __m256i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      wt = _mm256_add_epi32(
          _mm256_add_epi32(w[t & 15], MB8_GAMMA0(w[(t - 15) & 15])),
          _mm256_add_epi32(w[(t - 7) & 15], MB8_GAMMA1(w[(t - 2) & 15])));
      w[t & 15] = wt;
    }
    const __m256i ch =
        _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i maj = _mm256_or_si256(
        _mm256_and_si256(a, b), _mm256_and_si256(c, _mm256_or_si256(a, b)));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(h, MB8_SIGMA1(e)),
        _mm256_add_epi32(ch, _mm256_add_epi32(
                                 _mm256_set1_epi32(static_cast<i32>(kK[t])),
                                 wt)));
    const __m256i t2 = _mm256_add_epi32(MB8_SIGMA0(a), maj);
    h = g; g = f; f = e; e = _mm256_add_epi32(d, t1);
    d = c; c = b; b = a; a = _mm256_add_epi32(t1, t2);
  }

  a = _mm256_add_epi32(a, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[0])));
  b = _mm256_add_epi32(b, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[1])));
  c = _mm256_add_epi32(c, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[2])));
  d = _mm256_add_epi32(d, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[3])));
  e = _mm256_add_epi32(e, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[4])));
  f = _mm256_add_epi32(f, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[5])));
  g = _mm256_add_epi32(g, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[6])));
  h = _mm256_add_epi32(h, _mm256_load_si256(reinterpret_cast<const __m256i*>(chain[7])));
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[0]), a);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[1]), b);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[2]), c);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[3]), d);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[4]), e);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[5]), f);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[6]), g);
  _mm256_store_si256(reinterpret_cast<__m256i*>(chain[7]), h);

  for (size_t lane = 0; lane < n; ++lane) {
    for (size_t j = 0; j < 8; ++j) (*states[lane])[j] = chain[j][lane];
  }
}

#undef MB8_ROTR
#undef MB8_XOR3
#undef MB8_SIGMA0
#undef MB8_SIGMA1
#undef MB8_GAMMA0
#undef MB8_GAMMA1

#define MB4_ROTR(x, r) \
  _mm_or_si128(_mm_srli_epi32((x), (r)), _mm_slli_epi32((x), 32 - (r)))
#define MB4_XOR3(x, y, z) _mm_xor_si128(_mm_xor_si128((x), (y)), (z))
#define MB4_SIGMA0(x) MB4_XOR3(MB4_ROTR(x, 2), MB4_ROTR(x, 13), MB4_ROTR(x, 22))
#define MB4_SIGMA1(x) MB4_XOR3(MB4_ROTR(x, 6), MB4_ROTR(x, 11), MB4_ROTR(x, 25))
#define MB4_GAMMA0(x) \
  MB4_XOR3(MB4_ROTR(x, 7), MB4_ROTR(x, 18), _mm_srli_epi32((x), 3))
#define MB4_GAMMA1(x) \
  MB4_XOR3(MB4_ROTR(x, 17), MB4_ROTR(x, 19), _mm_srli_epi32((x), 10))

void compress4_sse2(std::array<u32, 8>* const* states, const u8* const* blocks,
                    size_t n) {
  alignas(16) u32 words[16][4];
  alignas(16) u32 chain[8][4];
  for (size_t lane = 0; lane < 4; ++lane) {
    const size_t src = lane < n ? lane : 0;
    for (size_t t = 0; t < 16; ++t) {
      words[t][lane] = load_be32(blocks[src] + 4 * t);
    }
    for (size_t j = 0; j < 8; ++j) chain[j][lane] = (*states[src])[j];
  }

  __m128i w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm_load_si128(reinterpret_cast<const __m128i*>(words[t]));
  }
  __m128i a = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[0]));
  __m128i b = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[1]));
  __m128i c = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[2]));
  __m128i d = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[3]));
  __m128i e = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[4]));
  __m128i f = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[5]));
  __m128i g = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[6]));
  __m128i h = _mm_load_si128(reinterpret_cast<const __m128i*>(chain[7]));

  for (int t = 0; t < 64; ++t) {
    __m128i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      wt = _mm_add_epi32(_mm_add_epi32(w[t & 15], MB4_GAMMA0(w[(t - 15) & 15])),
                         _mm_add_epi32(w[(t - 7) & 15],
                                       MB4_GAMMA1(w[(t - 2) & 15])));
      w[t & 15] = wt;
    }
    const __m128i ch =
        _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
    const __m128i maj = _mm_or_si128(_mm_and_si128(a, b),
                                     _mm_and_si128(c, _mm_or_si128(a, b)));
    const __m128i t1 = _mm_add_epi32(
        _mm_add_epi32(h, MB4_SIGMA1(e)),
        _mm_add_epi32(ch, _mm_add_epi32(
                              _mm_set1_epi32(static_cast<i32>(kK[t])), wt)));
    const __m128i t2 = _mm_add_epi32(MB4_SIGMA0(a), maj);
    h = g; g = f; f = e; e = _mm_add_epi32(d, t1);
    d = c; c = b; b = a; a = _mm_add_epi32(t1, t2);
  }

  a = _mm_add_epi32(a, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[0])));
  b = _mm_add_epi32(b, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[1])));
  c = _mm_add_epi32(c, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[2])));
  d = _mm_add_epi32(d, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[3])));
  e = _mm_add_epi32(e, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[4])));
  f = _mm_add_epi32(f, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[5])));
  g = _mm_add_epi32(g, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[6])));
  h = _mm_add_epi32(h, _mm_load_si128(reinterpret_cast<const __m128i*>(chain[7])));
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[0]), a);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[1]), b);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[2]), c);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[3]), d);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[4]), e);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[5]), f);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[6]), g);
  _mm_store_si128(reinterpret_cast<__m128i*>(chain[7]), h);

  for (size_t lane = 0; lane < n; ++lane) {
    for (size_t j = 0; j < 8; ++j) (*states[lane])[j] = chain[j][lane];
  }
}

#undef MB4_ROTR
#undef MB4_XOR3
#undef MB4_SIGMA0
#undef MB4_SIGMA1
#undef MB4_GAMMA0
#undef MB4_GAMMA1

#endif  // RAP_SHA_MB_X86

/// One message's block layout: full 64-byte blocks straight from the caller's
/// buffer, then a one- or two-block tail holding the remainder plus FIPS
/// padding (0x80, zeros, 64-bit message length including the prefix).
struct Prepared {
  const u8* data = nullptr;
  size_t full_blocks = 0;
  size_t tail_blocks = 0;
  size_t total_blocks = 0;
  std::array<u8, 128> tail{};

  const u8* block(size_t b) const {
    return b < full_blocks ? data + 64 * b : tail.data() + 64 * (b - full_blocks);
  }
};

Prepared prepare(const MbMsg& msg, u64 prefix_bytes) {
  Prepared p;
  p.data = msg.data;
  p.full_blocks = msg.len / 64;
  const size_t rem = msg.len % 64;
  if (rem > 0) std::memcpy(p.tail.data(), msg.data + 64 * p.full_blocks, rem);
  p.tail[rem] = 0x80;
  p.tail_blocks = rem < 56 ? 1 : 2;
  p.total_blocks = p.full_blocks + p.tail_blocks;
  const u64 bits = (prefix_bytes + msg.len) * 8;
  u8* length_field = p.tail.data() + 64 * p.tail_blocks - 8;
  for (int i = 0; i < 8; ++i) {
    length_field[i] = static_cast<u8>(bits >> (56 - 8 * i));
  }
  return p;
}

void store_digest(const std::array<u32, 8>& state, Digest& out) {
  for (size_t j = 0; j < 8; ++j) {
    out[4 * j] = static_cast<u8>(state[j] >> 24);
    out[4 * j + 1] = static_cast<u8>(state[j] >> 16);
    out[4 * j + 2] = static_cast<u8>(state[j] >> 8);
    out[4 * j + 3] = static_cast<u8>(state[j]);
  }
}

/// Single-message path: runs of consecutive blocks (the caller's buffer,
/// then the padded tail) go through detail::compress_blocks so the SHA-NI
/// kernel covers non-batched messages too, not just interleaved lanes.
void hash_one_single(const std::array<u32, 8>& init, u64 prefix_bytes,
                     const MbMsg& msg, Digest& out) {
  std::array<u32, 8> state = init;
  const Prepared p = prepare(msg, prefix_bytes);
  if (p.full_blocks > 0) detail::compress_blocks(state, p.data, p.full_blocks);
  detail::compress_blocks(state, p.tail.data(), p.tail_blocks);
  store_digest(state, out);
}

}  // namespace

size_t sha256_mb_lanes() {
  if (detail::force_scalar_active()) return 1;
  static const size_t hw = detect_lanes();
  size_t lanes = hw;
  if (g_forced_lanes != 0 && g_forced_lanes < lanes) lanes = g_forced_lanes;
  if (lanes >= 8) return 8;
  if (lanes >= 4) return 4;
  return 1;
}

void sha256_mb_force_lanes(size_t lanes) { g_forced_lanes = lanes; }

void sha256_mb_compress(std::array<u32, 8>* const* states,
                        const u8* const* blocks, size_t n) {
  if (n == 0) return;
  const size_t lanes = sha256_mb_lanes();
#ifdef RAP_SHA_MB_X86
  if (lanes == 8) {
    compress8_avx2(states, blocks, std::min<size_t>(n, 8));
    for (size_t i = 8; i < n; ++i) detail::compress_blocks(*states[i], blocks[i], 1);
    return;
  }
  if (lanes == 4) {
    for (size_t i = 0; i < n; i += 4) {
      compress4_sse2(states + i, blocks + i, std::min<size_t>(4, n - i));
    }
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) detail::compress_blocks(*states[i], blocks[i], 1);
}

void sha256_mb_hash_with_state(const std::array<u32, 8>& init,
                               u64 prefix_bytes,
                               std::span<const MbMsg> messages, Digest* out) {
  const size_t n = messages.size();
  if (n == 0) return;
  const size_t lanes = sha256_mb_lanes();
  if (lanes == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      hash_one_single(init, prefix_bytes, messages[i], out[i]);
    }
    return;
  }

  std::vector<Prepared> prepared;
  prepared.reserve(n);
  for (const MbMsg& msg : messages) prepared.push_back(prepare(msg, prefix_bytes));

  // Lanes advance in lockstep, so only same-length (same padded block count)
  // messages can share a batch. Group by block count — report chains are
  // near-uniform (every partial report MACs the same watermark-sized chunk),
  // so this typically yields one big group plus the final report.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return prepared[a].total_blocks < prepared[b].total_blocks;
  });

  std::vector<std::array<u32, 8>> states(n, init);
  size_t group = 0;
  while (group < n) {
    size_t group_end = group;
    const size_t blocks = prepared[order[group]].total_blocks;
    while (group_end < n && prepared[order[group_end]].total_blocks == blocks) {
      ++group_end;
    }
    for (size_t base = group; base < group_end; base += lanes) {
      const size_t width = std::min(lanes, group_end - base);
      std::array<u32, 8>* state_ptrs[kMaxShaLanes];
      const u8* block_ptrs[kMaxShaLanes];
      for (size_t l = 0; l < width; ++l) {
        state_ptrs[l] = &states[order[base + l]];
      }
      for (size_t b = 0; b < blocks; ++b) {
        for (size_t l = 0; l < width; ++l) {
          block_ptrs[l] = prepared[order[base + l]].block(b);
        }
        sha256_mb_compress(state_ptrs, block_ptrs, width);
      }
    }
    group = group_end;
  }

  for (size_t i = 0; i < n; ++i) store_digest(states[i], out[i]);
}

void sha256_mb_hash(std::span<const MbMsg> messages, Digest* out) {
  sha256_mb_hash_with_state(kInitialState, 0, messages, out);
}

}  // namespace raptrack::crypto
