// SHA-256 (FIPS 180-4), implemented from scratch for the RoT: the CFA engine
// hashes APP memory (H_MEM) and authenticates reports with HMAC-SHA256.
// Tested against the FIPS examples and RFC 4231 HMAC vectors.
#pragma once

#include <array>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace raptrack::crypto {

using Digest = std::array<u8, 32>;

namespace detail {
struct Sha256Access;
}

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const u8> data);
  void update(std::string_view text);
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const u8> data);
  static Digest hash(std::string_view text);

  /// Force the portable scalar compression even when the CPU has SHA
  /// extensions. Both paths implement the same FIPS 180-4 dataflow; the
  /// differential test pins them against each other, and coverage runs use
  /// this to exercise the path the host CPU would otherwise skip.
  static void force_scalar(bool force);

 private:
  friend struct detail::Sha256Access;

  void process_blocks(const u8* data, std::size_t blocks);

  std::array<u32, 8> state_{};
  std::array<u8, 64> buffer_{};
  u64 total_bytes_ = 0;
  u32 buffered_ = 0;
};

namespace detail {

/// Internal plumbing for the multi-buffer SHA-256 engine (sha256_mb.cpp) and
/// the batched HMAC verifier: raw chaining-value access plus the scalar
/// single-block compression, so many messages can be run through the same
/// FIPS 180-4 dataflow in interleaved lanes without widening the public
/// Sha256 surface. Not for general use.
struct Sha256Access {
  /// Chaining value of a block-aligned hasher (e.g. an HMAC pad midstate).
  static const std::array<u32, 8>& state(const Sha256& h) { return h.state_; }
};

/// Compress one 64-byte block into `state` with the portable scalar kernel.
void compress_scalar(std::array<u32, 8>& state, const u8* block);

/// Compress `blocks` consecutive 64-byte blocks into `state`, dispatching to
/// the SHA-NI kernel when the CPU has it (and Sha256::force_scalar is off),
/// falling back to the scalar kernel otherwise. This is the single-message
/// fast path the multi-buffer engine uses for tails, odd lanes, and one-off
/// messages that cannot fill an interleaved batch.
void compress_blocks(std::array<u32, 8>& state, const u8* data,
                     std::size_t blocks);

/// Is Sha256::force_scalar(true) in effect? The multi-buffer dispatcher
/// honors the same test hook and falls back to one-lane scalar hashing.
bool force_scalar_active();

}  // namespace detail

}  // namespace raptrack::crypto
