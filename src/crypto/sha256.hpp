// SHA-256 (FIPS 180-4), implemented from scratch for the RoT: the CFA engine
// hashes APP memory (H_MEM) and authenticates reports with HMAC-SHA256.
// Tested against the FIPS examples and RFC 4231 HMAC vectors.
#pragma once

#include <array>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace raptrack::crypto {

using Digest = std::array<u8, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const u8> data);
  void update(std::string_view text);
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const u8> data);
  static Digest hash(std::string_view text);

  /// Force the portable scalar compression even when the CPU has SHA
  /// extensions. Both paths implement the same FIPS 180-4 dataflow; the
  /// differential test pins them against each other, and coverage runs use
  /// this to exercise the path the host CPU would otherwise skip.
  static void force_scalar(bool force);

 private:
  void process_blocks(const u8* data, std::size_t blocks);

  std::array<u32, 8> state_{};
  std::array<u8, 64> buffer_{};
  u64 total_bytes_ = 0;
  u32 buffered_ = 0;
};

}  // namespace raptrack::crypto
