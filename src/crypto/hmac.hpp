// HMAC-SHA256 (RFC 2104). Used by the RoT to authenticate CFA reports in
// the symmetric setting ("a MAC, in the symmetric setting" — §IV-F), with
// the key provisioned to the Secure World and shared with the Verifier.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace raptrack::crypto {

/// MAC key. 32 bytes is the natural size for HMAC-SHA256; other lengths are
/// handled per RFC 2104 (hashed when longer than the block size).
using Key = std::vector<u8>;

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> message);

/// Incremental HMAC-SHA256 over a message fed in pieces. Lets callers MAC a
/// header followed by a large payload without first concatenating them into
/// one buffer (report signing sits on the prover's per-run fixed-cost path).
/// Produces exactly hmac_sha256(key, header || payload).
class HmacSha256 {
 public:
  explicit HmacSha256(std::span<const u8> key);

  void update(std::span<const u8> data) { inner_.update(data); }
  Digest finalize();

 private:
  Sha256 inner_;
  std::array<u8, 64> opad_{};
};

/// Constant-time digest comparison (the Verifier must not leak via timing).
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace raptrack::crypto
