// HMAC-SHA256 (RFC 2104). Used by the RoT to authenticate CFA reports in
// the symmetric setting ("a MAC, in the symmetric setting" — §IV-F), with
// the key provisioned to the Secure World and shared with the Verifier.
//
// The Verifier side is throughput-critical: a service instance MAC-checks
// every report of every chain it admits. HmacKeySchedule precomputes the
// ipad/opad compression (two SHA-256 blocks) once per key; every MAC under
// that key then starts from the saved midstates instead of re-deriving
// them, and hmac_verify_batch checks a whole admitted chain against one
// schedule without copying any message bytes.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace raptrack::crypto {

/// MAC key. 32 bytes is the natural size for HMAC-SHA256; other lengths are
/// handled per RFC 2104 (hashed when longer than the block size).
using Key = std::vector<u8>;

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> message);

/// One report's authenticity claim: the exact MAC input bytes (for wire
/// admission, a view into the receive buffer — no copy) and the MAC the
/// sender attached (32 bytes, also typically a view into the buffer).
struct MacClaim {
  std::span<const u8> message;
  std::span<const u8> claimed;
};

/// Precomputed per-key HMAC state: the SHA-256 midstates after absorbing the
/// ipad and opad blocks. Immutable after construction and safe to share
/// across threads — the verifier farm builds one per RoT key and every
/// worker MACs against it concurrently.
class HmacKeySchedule {
 public:
  explicit HmacKeySchedule(std::span<const u8> key);

  /// hmac(key, a || b) from the midstates. The two-span form lets callers
  /// MAC a header followed by a payload that live in different buffers
  /// without concatenating them.
  Digest mac(std::span<const u8> a, std::span<const u8> b = {}) const;

  /// Constant-time check of a claimed MAC over `message`.
  bool check(std::span<const u8> message, const Digest& claimed) const;

 private:
  friend class HmacSha256;
  friend std::optional<size_t> hmac_verify_batch(
      const HmacKeySchedule& schedule, std::span<const MacClaim> claims);
  Sha256 inner_mid_;  ///< state after the ipad block
  Sha256 outer_mid_;  ///< state after the opad block
};

/// Incremental HMAC-SHA256 over a message fed in pieces. Lets callers MAC a
/// header followed by a large payload without first concatenating them into
/// one buffer (report signing sits on the prover's per-run fixed-cost path).
/// Produces exactly hmac_sha256(key, header || payload).
class HmacSha256 {
 public:
  explicit HmacSha256(std::span<const u8> key);
  /// Start from a precomputed key schedule: skips both key-block
  /// compressions (the verifier-farm fast path).
  explicit HmacSha256(const HmacKeySchedule& schedule);

  void update(std::span<const u8> data) { inner_.update(data); }
  Digest finalize();

 private:
  Sha256 inner_;
  Sha256 outer_;  ///< midstate after the opad block
};

/// Check every claim under one schedule, in order. Returns the index of the
/// first claim whose MAC does not verify, or nullopt when all pass. Batches
/// of two or more run the inner and outer hashes through the multi-buffer
/// SHA-256 lanes (sha256_mb.hpp) — 4/8 MACs per compression pass — and fall
/// back to the serial schedule when the host (or force_scalar) offers only
/// one lane. Each individual comparison is constant-time; the early exit
/// only reveals *which* report failed, which the verdict reports anyway.
std::optional<size_t> hmac_verify_batch(const HmacKeySchedule& schedule,
                                        std::span<const MacClaim> claims);

/// Constant-time digest comparison (the Verifier must not leak via timing).
bool digest_equal(const Digest& a, const Digest& b);
/// Same, against unowned bytes (e.g. a MAC still sitting in a wire buffer).
/// False when `b` is not exactly digest-sized.
bool digest_equal(const Digest& a, std::span<const u8> b);

}  // namespace raptrack::crypto
