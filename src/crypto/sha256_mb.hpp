// Multi-buffer SHA-256: compress several *independent* messages in lockstep,
// one message per SIMD lane. SHA-256 is strictly sequential within a message
// (each block chains into the next), so a single long hash cannot be
// vectorized — but the verifier's hot path is the opposite shape: a report
// chain is dozens of short, independent HMAC inputs under one key. Laying
// eight chaining values out structure-of-arrays and running the FIPS 180-4
// round function over 8x32-bit vectors retires eight hashes for roughly the
// cost of one scalar pass.
//
// Dispatch is by runtime CPU detection: AVX2 gives 8 lanes, baseline x86-64
// SSE2 gives 4, anything else (or Sha256::force_scalar) degrades to a
// one-lane scalar loop. All paths implement the same dataflow; test_crypto
// pins them against Sha256 on the FIPS/RFC vectors and fuzzed inputs.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace raptrack::crypto {

/// Widest lane count any kernel uses; callers may size scratch arrays to it.
inline constexpr size_t kMaxShaLanes = 8;

/// Lane count the dispatcher would use right now: 8 (AVX2), 4 (SSE2), or 1
/// (non-x86 build, Sha256::force_scalar, or sha256_mb_force_lanes(1)).
size_t sha256_mb_lanes();

/// Test hook: cap the dispatch at `lanes` lanes (values above the host's
/// capability clamp down; 0 restores auto-detection). Lets the differential
/// tests exercise the 4-lane kernel on an AVX2 host and the scalar fallback
/// everywhere. Like Sha256::force_scalar, flip only from single-threaded
/// test setup.
void sha256_mb_force_lanes(size_t lanes);

/// One 64-byte block per lane, compressed into `n` independent chaining
/// values (n <= kMaxShaLanes; short batches pad internally with a scratch
/// lane). states[i] is updated in place from blocks[i].
void sha256_mb_compress(std::array<u32, 8>* const* states,
                        const u8* const* blocks, size_t n);

/// One independent message for a batched hash.
struct MbMsg {
  const u8* data = nullptr;
  size_t len = 0;
};

/// Batched SHA-256 resuming from a common midstate: every message is hashed
/// as if `prefix_bytes` of input had already been absorbed into `init`
/// (which must therefore be block-aligned). This is exactly the HMAC shape —
/// init = the ipad/opad midstate, prefix 64 — and with the FIPS initial
/// state / prefix 0 it is a plain batched SHA-256. out[i] receives the
/// digest of messages[i]; messages of differing lengths are grouped by
/// padded block count internally.
void sha256_mb_hash_with_state(const std::array<u32, 8>& init,
                               u64 prefix_bytes,
                               std::span<const MbMsg> messages, Digest* out);

/// Batched plain SHA-256: out[i] = Sha256::hash(messages[i]).
void sha256_mb_hash(std::span<const MbMsg> messages, Digest* out);

}  // namespace raptrack::crypto
