#include "crypto/sha256.hpp"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAP_SHA_NI 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace raptrack::crypto {

namespace {

constexpr std::array<u32, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr u32 rotr(u32 x, unsigned n) { return (x >> n) | (x << (32 - n)); }

/// Portable fallback compression, one block at a time.
void process_block_scalar(u32* state, const u8* block) {
  u32 w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<u32>(block[4 * i]) << 24) |
           (static_cast<u32>(block[4 * i + 1]) << 16) |
           (static_cast<u32>(block[4 * i + 2]) << 8) |
           static_cast<u32>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  u32 a = state[0], b = state[1], c = state[2], d = state[3];
  u32 e = state[4], f = state[5], g = state[6], h = state[7];
  // One compression round with the working variables already rotated into
  // place: the caller permutes the arguments instead of the loop shuffling
  // eight registers per round (same FIPS 180-4 dataflow, fewer moves).
  const auto round = [&w](u32 a, u32 b, u32 c, u32& d, u32 e, u32 f, u32 g,
                          u32& h, int i) {
    const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const u32 ch = (e & f) ^ (~e & g);
    const u32 temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const u32 maj = (a & b) ^ (a & c) ^ (b & c);
    d += temp1;
    h = temp1 + s0 + maj;
  };
  for (int i = 0; i < 64; i += 8) {
    round(a, b, c, d, e, f, g, h, i + 0);
    round(h, a, b, c, d, e, f, g, i + 1);
    round(g, h, a, b, c, d, e, f, i + 2);
    round(f, g, h, a, b, c, d, e, i + 3);
    round(e, f, g, h, a, b, c, d, i + 4);
    round(d, e, f, g, h, a, b, c, i + 5);
    round(c, d, e, f, g, h, a, b, i + 6);
    round(b, c, d, e, f, g, h, a, i + 7);
  }
  state[0] += a; state[1] += b; state[2] += c; state[3] += d;
  state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

#ifdef RAP_SHA_NI

/// Does this CPU implement the SHA extensions (plus the SSE4.1/SSSE3 the
/// kernel below also leans on)? CPUID leaf 7 EBX bit 29 / leaf 1 ECX.
bool detect_sha_ni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  const bool sha = (ebx >> 29) & 1u;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool ssse3 = (ecx >> 9) & 1u;
  const bool sse41 = (ecx >> 19) & 1u;
  return sha && ssse3 && sse41;
}

bool has_sha_ni() {
  static const bool supported = detect_sha_ni();
  return supported;
}

/// Hardware compression via the x86 SHA extensions. Same FIPS 180-4
/// dataflow as the scalar path, mapped onto sha256rnds2 (two rounds per
/// issue, state packed as ABEF/CDGH) with sha256msg1/msg2 running the
/// message schedule — the standard instruction sequence for this ISA.
/// Compiled with a per-function target so the rest of the build stays
/// baseline; only reachable after detect_sha_ni() says yes.
__attribute__((target("sha,sse4.1,ssse3"))) void process_blocks_shani(
    u32* state, const u8* data, std::size_t blocks) {
  const __m128i kFlip =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const __m128i* k =
      reinterpret_cast<const __m128i*>(kRoundConstants.data());

  // Pack {a,b,e,f} / {c,d,g,h} the way sha256rnds2 wants them.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  s1 = _mm_shuffle_epi32(s1, 0x1B);
  __m128i s0 = _mm_alignr_epi8(tmp, s1, 8);
  s1 = _mm_blend_epi16(s1, tmp, 0xF0);

  while (blocks-- > 0) {
    const __m128i save0 = s0;
    const __m128i save1 = s1;
    __m128i m0, m1, m2, m3, msg;

    // Rounds 0-15: load + byte-swap the block, no schedule yet.
    m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), kFlip);
    msg = _mm_add_epi32(m0, _mm_loadu_si128(k));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    s0 = _mm_sha256rnds2_epu32(s0, s1, _mm_shuffle_epi32(msg, 0x0E));

    m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kFlip);
    msg = _mm_add_epi32(m1, _mm_loadu_si128(k + 1));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    s0 = _mm_sha256rnds2_epu32(s0, s1, _mm_shuffle_epi32(msg, 0x0E));
    m0 = _mm_sha256msg1_epu32(m0, m1);

    m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kFlip);
    msg = _mm_add_epi32(m2, _mm_loadu_si128(k + 2));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    s0 = _mm_sha256rnds2_epu32(s0, s1, _mm_shuffle_epi32(msg, 0x0E));
    m1 = _mm_sha256msg1_epu32(m1, m2);

    m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kFlip);

    // Rounds 12-59: schedule four words ahead each step (msg1 + alignr
    // carry + msg2), rotating through m0..m3. The last two iterations'
    // msg1 results are never consumed — same dataflow as the fully
    // unrolled canonical sequence, which simply omits them.
    for (int i = 3; i < 15; ++i) {
      msg = _mm_add_epi32(m3, _mm_loadu_si128(k + i));
      s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
      const __m128i carry = _mm_alignr_epi8(m3, m2, 4);
      m0 = _mm_sha256msg2_epu32(_mm_add_epi32(m0, carry), m3);
      s0 = _mm_sha256rnds2_epu32(s0, s1, _mm_shuffle_epi32(msg, 0x0E));
      m2 = _mm_sha256msg1_epu32(m2, m3);
      // Rotate: the freshest schedule block becomes m3 for the next step.
      const __m128i next = m0;
      m0 = m1; m1 = m2; m2 = m3; m3 = next;
    }

    // Rounds 60-63: schedule exhausted, just finish the compression.
    msg = _mm_add_epi32(m3, _mm_loadu_si128(k + 15));
    s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
    s0 = _mm_sha256rnds2_epu32(s0, s1, _mm_shuffle_epi32(msg, 0x0E));

    s0 = _mm_add_epi32(s0, save0);
    s1 = _mm_add_epi32(s1, save1);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(s0, 0x1B);
  s1 = _mm_shuffle_epi32(s1, 0xB1);
  s0 = _mm_blend_epi16(tmp, s1, 0xF0);
  s1 = _mm_alignr_epi8(s1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), s1);
}

#endif  // RAP_SHA_NI

}  // namespace

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  total_bytes_ = 0;
  buffered_ = 0;
}

namespace {
// Test hook (see Sha256::force_scalar): plain bool, flipped only from
// single-threaded test setup before any hashing runs.
bool g_force_scalar = false;
}  // namespace

void Sha256::force_scalar(bool force) { g_force_scalar = force; }

void Sha256::process_blocks(const u8* data, std::size_t blocks) {
#ifdef RAP_SHA_NI
  if (!g_force_scalar && has_sha_ni()) {
    process_blocks_shani(state_.data(), data, blocks);
    return;
  }
#endif
  for (; blocks > 0; --blocks, data += 64) {
    process_block_scalar(state_.data(), data);
  }
}

void Sha256::update(std::span<const u8> data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    const size_t take = std::min<size_t>(64 - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += static_cast<u32>(take);
    offset = take;
    if (buffered_ == 64) {
      process_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  const size_t whole = (data.size() - offset) / 64;
  if (whole > 0) {
    process_blocks(data.data() + offset, whole);
    offset += whole * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = static_cast<u32>(data.size() - offset);
  }
}

void Sha256::update(std::string_view text) {
  update(std::span<const u8>(reinterpret_cast<const u8*>(text.data()), text.size()));
}

Digest Sha256::finalize() {
  const u64 bit_length = total_bytes_ * 8;
  // One update with the whole padding (0x80, zeros to the next 56-mod-64
  // boundary, 8 length bytes) instead of a byte-at-a-time loop.
  u8 pad[72] = {0x80};
  const size_t zeros =
      (buffered_ < 56 ? 56 - buffered_ : 120 - buffered_) - 1;
  for (int i = 0; i < 8; ++i) {
    pad[1 + zeros + i] = static_cast<u8>(bit_length >> (56 - 8 * i));
  }
  update(std::span<const u8>(pad, 1 + zeros + 8));
  Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<u8>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<u8>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<u8>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<u8>(state_[i]);
  }
  reset();
  return digest;
}

Digest Sha256::hash(std::span<const u8> data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest Sha256::hash(std::string_view text) {
  Sha256 h;
  h.update(text);
  return h.finalize();
}

namespace detail {

void compress_scalar(std::array<u32, 8>& state, const u8* block) {
  process_block_scalar(state.data(), block);
}

void compress_blocks(std::array<u32, 8>& state, const u8* data,
                     std::size_t blocks) {
#ifdef RAP_SHA_NI
  if (!g_force_scalar && has_sha_ni()) {
    process_blocks_shani(state.data(), data, blocks);
    return;
  }
#endif
  for (; blocks > 0; --blocks, data += 64) {
    process_block_scalar(state.data(), data);
  }
}

bool force_scalar_active() { return g_force_scalar; }

}  // namespace detail

}  // namespace raptrack::crypto
