#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace raptrack::crypto {

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> message) {
  constexpr size_t kBlock = 64;
  std::array<u8, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<u8, kBlock> ipad{};
  std::array<u8, kBlock> opad{};
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

bool digest_equal(const Digest& a, const Digest& b) {
  u8 difference = 0;
  for (size_t i = 0; i < a.size(); ++i) difference |= a[i] ^ b[i];
  return difference == 0;
}

}  // namespace raptrack::crypto
