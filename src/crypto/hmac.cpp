#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "crypto/sha256_mb.hpp"

namespace raptrack::crypto {

namespace {

constexpr size_t kBlock = 64;

/// RFC 2104 key normalization: hash long keys, zero-pad short ones.
std::array<u8, kBlock> normalize_key(std::span<const u8> key) {
  std::array<u8, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }
  return key_block;
}

}  // namespace

HmacKeySchedule::HmacKeySchedule(std::span<const u8> key) {
  const std::array<u8, kBlock> key_block = normalize_key(key);
  std::array<u8, kBlock> ipad{};
  std::array<u8, kBlock> opad{};
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  inner_mid_.update(ipad);
  outer_mid_.update(opad);
}

Digest HmacKeySchedule::mac(std::span<const u8> a,
                            std::span<const u8> b) const {
  HmacSha256 h(*this);
  h.update(a);
  if (!b.empty()) h.update(b);
  return h.finalize();
}

bool HmacKeySchedule::check(std::span<const u8> message,
                            const Digest& claimed) const {
  return digest_equal(mac(message), claimed);
}

HmacSha256::HmacSha256(std::span<const u8> key) {
  const std::array<u8, kBlock> key_block = normalize_key(key);
  std::array<u8, kBlock> ipad{};
  std::array<u8, kBlock> opad{};
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  inner_.update(ipad);
  outer_.update(opad);
}

HmacSha256::HmacSha256(const HmacKeySchedule& schedule)
    : inner_(schedule.inner_mid_), outer_(schedule.outer_mid_) {}

Digest HmacSha256::finalize() {
  const Digest inner_digest = inner_.finalize();
  outer_.update(inner_digest);
  return outer_.finalize();
}

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finalize();
}

std::optional<size_t> hmac_verify_batch(const HmacKeySchedule& schedule,
                                        std::span<const MacClaim> claims) {
  const size_t n = claims.size();
  const size_t lanes = sha256_mb_lanes();
  if (n >= 2 && lanes > 1) {
    // Chunked at lane-width granularity with early exit: a valid chain
    // pays the same two interleaved passes as one big batch, but a forged
    // report stops the scan after its own chunk instead of pricing every
    // MAC behind it — adversarial floods reject in O(lanes), not O(chain).
    std::vector<MbMsg> messages(lanes);
    std::vector<Digest> inner(lanes);
    std::vector<Digest> macs(lanes);
    for (size_t base = 0; base < n; base += lanes) {
      const size_t count = std::min(lanes, n - base);
      // Inner hashes: every message resumes from the shared ipad midstate
      // (one block already absorbed), interleaved across the SIMD lanes.
      for (size_t i = 0; i < count; ++i) {
        messages[i] = {claims[base + i].message.data(),
                       claims[base + i].message.size()};
      }
      sha256_mb_hash_with_state(
          detail::Sha256Access::state(schedule.inner_mid_), kBlock,
          std::span(messages.data(), count), inner.data());
      // Outer hashes: opad midstate + 32-byte inner digest — uniformly one
      // padded block per message, so the whole chunk lanes perfectly.
      for (size_t i = 0; i < count; ++i) {
        messages[i] = {inner[i].data(), inner[i].size()};
      }
      sha256_mb_hash_with_state(
          detail::Sha256Access::state(schedule.outer_mid_), kBlock,
          std::span(messages.data(), count), macs.data());
      for (size_t i = 0; i < count; ++i) {
        if (!digest_equal(macs[i], claims[base + i].claimed)) return base + i;
      }
    }
    return std::nullopt;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!digest_equal(schedule.mac(claims[i].message), claims[i].claimed)) {
      return i;
    }
  }
  return std::nullopt;
}

bool digest_equal(const Digest& a, const Digest& b) {
  u8 difference = 0;
  for (size_t i = 0; i < a.size(); ++i) difference |= a[i] ^ b[i];
  return difference == 0;
}

bool digest_equal(const Digest& a, std::span<const u8> b) {
  if (b.size() != a.size()) return false;
  u8 difference = 0;
  for (size_t i = 0; i < a.size(); ++i) difference |= a[i] ^ b[i];
  return difference == 0;
}

}  // namespace raptrack::crypto
