#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace raptrack::crypto {

HmacSha256::HmacSha256(std::span<const u8> key) {
  constexpr size_t kBlock = 64;
  std::array<u8, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<u8, kBlock> ipad{};
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad_[i] = key_block[i] ^ 0x5c;
  }
  inner_.update(ipad);
}

Digest HmacSha256::finalize() {
  const Digest inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(opad_);
  outer.update(inner_digest);
  return outer.finalize();
}

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finalize();
}

bool digest_equal(const Digest& a, const Digest& b) {
  u8 difference = 0;
  for (size_t i = 0; i < a.size(); ++i) difference |= a[i] ^ b[i];
  return difference == 0;
}

}  // namespace raptrack::crypto
