#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace raptrack::crypto {

namespace {

constexpr size_t kBlock = 64;

/// RFC 2104 key normalization: hash long keys, zero-pad short ones.
std::array<u8, kBlock> normalize_key(std::span<const u8> key) {
  std::array<u8, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }
  return key_block;
}

}  // namespace

HmacKeySchedule::HmacKeySchedule(std::span<const u8> key) {
  const std::array<u8, kBlock> key_block = normalize_key(key);
  std::array<u8, kBlock> ipad{};
  std::array<u8, kBlock> opad{};
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  inner_mid_.update(ipad);
  outer_mid_.update(opad);
}

Digest HmacKeySchedule::mac(std::span<const u8> a,
                            std::span<const u8> b) const {
  HmacSha256 h(*this);
  h.update(a);
  if (!b.empty()) h.update(b);
  return h.finalize();
}

bool HmacKeySchedule::check(std::span<const u8> message,
                            const Digest& claimed) const {
  return digest_equal(mac(message), claimed);
}

HmacSha256::HmacSha256(std::span<const u8> key) {
  const std::array<u8, kBlock> key_block = normalize_key(key);
  std::array<u8, kBlock> ipad{};
  std::array<u8, kBlock> opad{};
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  inner_.update(ipad);
  outer_.update(opad);
}

HmacSha256::HmacSha256(const HmacKeySchedule& schedule)
    : inner_(schedule.inner_mid_), outer_(schedule.outer_mid_) {}

Digest HmacSha256::finalize() {
  const Digest inner_digest = inner_.finalize();
  outer_.update(inner_digest);
  return outer_.finalize();
}

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finalize();
}

std::optional<size_t> hmac_verify_batch(const HmacKeySchedule& schedule,
                                        std::span<const MacClaim> claims) {
  for (size_t i = 0; i < claims.size(); ++i) {
    if (!digest_equal(schedule.mac(claims[i].message), claims[i].claimed)) {
      return i;
    }
  }
  return std::nullopt;
}

bool digest_equal(const Digest& a, const Digest& b) {
  u8 difference = 0;
  for (size_t i = 0; i < a.size(); ++i) difference |= a[i] ^ b[i];
  return difference == 0;
}

bool digest_equal(const Digest& a, std::span<const u8> b) {
  if (b.size() != a.size()) return false;
  u8 difference = 0;
  for (size_t i = 0; i < a.size(); ++i) difference |= a[i] ^ b[i];
  return difference == 0;
}

}  // namespace raptrack::crypto
