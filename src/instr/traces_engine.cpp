#include "instr/traces_engine.hpp"

#include <bit>

#include "common/bits.hpp"
#include "common/hex.hpp"

namespace raptrack::instr {

using isa::BranchKind;
using isa::Instruction;
using isa::Op;
using isa::Reg;

TracesEngine::TracesEngine(const Program& program,
                           const TracesManifest& manifest,
                           mem::MemoryMap& memory, u32 capacity_bytes,
                           bool bit_packed)
    : program_(&program),
      manifest_(&manifest),
      memory_(&memory),
      capacity_bytes_(capacity_bytes),
      bit_packed_(bit_packed) {}

void TracesEngine::attach(tz::SecureMonitor& monitor) {
  monitor.register_service(tz::Service::kTracesLogBranch,
                           [this](cpu::CpuState& s) { return log_branch(s); });
  monitor.register_service(
      tz::Service::kTracesLogLoopCondition,
      [this](cpu::CpuState& s) { return log_loop_condition(s); });
}

u64 TracesEngine::current_bytes() const {
  const u64 cond_bytes =
      bit_packed_ ? (window_bits_ + 31) / 32 * 4 : window_bits_ * 4;
  return cond_bytes + window_addr_bytes_ + window_loop_bytes_;
}

u64 TracesEngine::total_log_bytes() const {
  return flushed_bytes_ + current_bytes();
}

TracesLog TracesEngine::window() const {
  TracesLog w;
  w.direction_bits.assign(log_.direction_bits.begin() + window_bits_start_,
                          log_.direction_bits.end());
  w.indirect_targets.assign(log_.indirect_targets.begin() + window_addrs_start_,
                            log_.indirect_targets.end());
  w.loop_conditions.assign(log_.loop_conditions.begin() + window_loops_start_,
                           log_.loop_conditions.end());
  return w;
}

void TracesEngine::maybe_flush() {
  if (capacity_bytes_ == 0 || current_bytes() < capacity_bytes_) return;
  // Partial report (§IV-E analogue for the instrumentation baseline): hand
  // the window to the prover for signing/transmission, then reset the
  // Secure-World buffer.
  if (flush_handler_) flush_handler_(window());
  flushed_bytes_ += current_bytes();
  window_bits_ = 0;
  window_addr_bytes_ = 0;
  window_loop_bytes_ = 0;
  window_bits_start_ = log_.direction_bits.size();
  window_addrs_start_ = log_.indirect_targets.size();
  window_loops_start_ = log_.loop_conditions.size();
  in_run_ = false;
  have_last_target_ = false;
  ++partial_flushes_;
}

Cycles TracesEngine::log_branch(cpu::CpuState& state) {
  // The SVC sits immediately before the relocated original instruction.
  const Address next_instr = state.pc();
  const auto decoded = program_->instruction_at(next_instr);
  if (!decoded) {
    throw Error("TracesEngine: no instruction after SVC at " + hex32(next_instr));
  }
  const Instruction& in = *decoded;
  ++events_;
  const tz::CostModel costs{};

  Cycles service = 0;
  switch (isa::branch_kind(in)) {
    case BranchKind::Conditional: {
      const bool taken = isa::evaluate(in.cond, state.flags);
      log_.direction_bits.push_back(taken);
      ++window_bits_;
      service = costs.cond_bit_append;
      break;
    }
    case BranchKind::IndirectCall:
    case BranchKind::IndirectJump:
    case BranchKind::Return: {
      Address target = 0;
      switch (in.op) {
        case Op::BX:
        case Op::BLX:
          target = state.reg(in.rm);
          break;
        case Op::LDR:
          target = memory_->raw_read32(state.reg(in.rn) +
                                       static_cast<Word>(in.imm));
          break;
        case Op::LDRR:
          target = memory_->raw_read32(state.reg(in.rn) +
                                       (state.reg(in.rm) << in.shift));
          break;
        case Op::POP: {
          // PC is popped last (highest address of the transfer block).
          const unsigned count =
              static_cast<unsigned>(std::popcount(in.reg_list));
          target = memory_->raw_read32(state.sp() + 4 * (count - 1));
          break;
        }
        default:
          throw Error("TracesEngine: unexpected instruction after SVC");
      }
      log_.indirect_targets.push_back(target);
      // Run-length encoding: a repeat extends the current run (2-byte
      // counter added when the run starts); a new target costs 4 bytes.
      if (have_last_target_ && target == last_indirect_target_) {
        if (!in_run_) {
          window_addr_bytes_ += 2;
          in_run_ = true;
        }
        service = costs.log_append + costs.rle_update;
      } else {
        window_addr_bytes_ += 4;
        in_run_ = false;
        service = costs.log_append;
      }
      last_indirect_target_ = target;
      have_last_target_ = true;
      break;
    }
    default:
      throw Error("TracesEngine: non-branch after SVC at " + hex32(next_instr));
  }
  maybe_flush();
  return service;
}

Cycles TracesEngine::log_loop_condition(cpu::CpuState& state) {
  const Address svc_addr = state.pc() - 4;
  const VeneerRecord* veneer = manifest_->veneer_at_svc(svc_addr);
  if (!veneer || !veneer->loop) {
    throw Error("TracesEngine: loop SVC with no veneer record at " +
                hex32(svc_addr));
  }
  ++events_;
  const u32 value = state.reg(veneer->loop->iterator);
  log_.loop_conditions.push_back(value);
  window_loop_bytes_ += 4;
  maybe_flush();
  return tz::CostModel{}.loop_cond_log;
}

void TracesEngine::reset() {
  log_ = {};
  window_bits_start_ = 0;
  window_addrs_start_ = 0;
  window_loops_start_ = 0;
  window_bits_ = 0;
  window_addr_bytes_ = 0;
  window_loop_bytes_ = 0;
  flushed_bytes_ = 0;
  in_run_ = false;
  have_last_target_ = false;
  partial_flushes_ = 0;
  events_ = 0;
}

}  // namespace raptrack::instr
