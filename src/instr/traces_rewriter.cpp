#include "instr/traces_rewriter.hpp"

#include <algorithm>

#include "cfg/cfg.hpp"
#include "common/hex.hpp"
#include "tz/secure_monitor.hpp"

namespace raptrack::instr {

using cfg::BccRole;
using isa::BranchKind;
using isa::Instruction;
using isa::Op;

const VeneerRecord* TracesManifest::veneer_at_svc(Address svc_addr) const {
  for (const auto& veneer : veneers) {
    if (veneer.svc_addr == svc_addr) return &veneer;
  }
  return nullptr;
}

const VeneerRecord* TracesManifest::veneer_containing(Address addr) const {
  for (const auto& veneer : veneers) {
    if (addr >= veneer.veneer_base && addr < veneer.veneer_end) {
      return &veneer;
    }
  }
  return nullptr;
}

namespace {

bool displaceable_verbatim(const Instruction& instr) {
  return isa::branch_kind(instr) == BranchKind::None && instr.op != Op::SVC;
}

}  // namespace

TracesResult rewrite_for_traces(const Program& original, Address entry,
                                Address code_begin, Address code_end,
                                const TracesOptions& options) {
  TracesResult result{.program = original};
  result.original_bytes = original.size();
  Program& program = result.program;

  const cfg::Cfg graph(program, entry, code_begin, code_end,
                       options.extra_cfg_roots);
  cfg::LoopAnalysis loops = cfg::analyze_loops(graph);
  if (!options.deterministic_loop_elision || !options.loop_optimization) {
    for (auto& [site, role] : loops.bcc_roles) {
      const bool demote_det =
          !options.deterministic_loop_elision && role == BccRole::Deterministic;
      const bool demote_opt =
          !options.loop_optimization && role == BccRole::LoopCondition;
      if (demote_det || demote_opt) role = BccRole::LogTaken;
    }
  }

  struct Planned {
    VeneerKind kind;
    Address site;
    Instruction original;
    std::optional<cfg::SimpleLoop> loop;
  };
  std::vector<Planned> planned;

  for (Address addr = code_begin; addr < code_end; addr += 4) {
    const auto decoded = program.instruction_at(addr);
    if (!decoded) continue;
    const Instruction instr = *decoded;
    if (instr.op == Op::SVC) {
      throw Error("traces: application code may not contain SVC at " + hex32(addr));
    }
    switch (isa::branch_kind(instr)) {
      case BranchKind::IndirectCall:
        planned.push_back({VeneerKind::IndirectCall, addr, instr, {}});
        break;
      case BranchKind::IndirectJump:
        planned.push_back({VeneerKind::IndirectJump, addr, instr, {}});
        break;
      case BranchKind::Return:
        if (instr.op == Op::POP) {
          planned.push_back({VeneerKind::ReturnPop, addr, instr, {}});
        }
        break;
      case BranchKind::Conditional: {
        const BccRole role = loops.bcc_roles.at(addr);
        if (role == BccRole::Deterministic) break;
        if (role == BccRole::LoopCondition) {
          const auto& simple = loops.simple_loops.at(addr);
          const auto displaced = program.instruction_at(simple.preheader_instr);
          if (displaced && displaceable_verbatim(*displaced)) {
            planned.push_back({VeneerKind::LoopCondition, simple.preheader_instr,
                               *displaced, simple});
            break;
          }
          // Not displaceable: instrument the branch per-iteration instead.
        }
        planned.push_back({VeneerKind::Conditional, addr, instr, {}});
        break;
      }
      default:
        break;
    }
  }

  // Guard against double-patching a site.
  {
    std::vector<Address> sites;
    for (const auto& p : planned) sites.push_back(p.site);
    std::sort(sites.begin(), sites.end());
    if (std::adjacent_find(sites.begin(), sites.end()) != sites.end()) {
      throw Error("traces: conflicting instrumentation sites");
    }
  }

  // Emit veneers.
  for (const auto& p : planned) {
    const Address veneer_base = program.end();
    std::vector<u32> words;
    VeneerRecord record;
    record.kind = p.kind;
    record.veneer_base = veneer_base;
    record.site = p.site;
    record.original = p.original;
    record.loop = p.loop;

    switch (p.kind) {
      case VeneerKind::IndirectCall:
        // [SVC; BX rm] — the BL at the site set LR already.
        record.svc_addr = veneer_base;
        words.push_back(isa::encode(
            isa::make_svc(static_cast<u8>(tz::Service::kTracesLogBranch))));
        words.push_back(isa::encode(isa::make_reg_branch(Op::BX, p.original.rm)));
        break;
      case VeneerKind::IndirectJump:
      case VeneerKind::ReturnPop:
        record.svc_addr = veneer_base;
        words.push_back(isa::encode(
            isa::make_svc(static_cast<u8>(tz::Service::kTracesLogBranch))));
        words.push_back(isa::encode(p.original));
        break;
      case VeneerKind::Conditional: {
        // [SVC; Bcc taken_target; B fall-through]
        record.svc_addr = veneer_base;
        record.taken_target = isa::branch_target(p.original, p.site);
        record.resume = p.site + 4;
        words.push_back(isa::encode(
            isa::make_svc(static_cast<u8>(tz::Service::kTracesLogBranch))));
        Instruction bcc = p.original;
        bcc.imm = isa::branch_offset(veneer_base + 4, record.taken_target);
        words.push_back(isa::encode(bcc));
        words.push_back(isa::encode(
            isa::make_branch(Op::B, isa::branch_offset(veneer_base + 8, record.resume))));
        break;
      }
      case VeneerKind::LoopCondition: {
        // [displaced; SVC; B header]
        words.push_back(isa::encode(p.original));
        record.svc_addr = veneer_base + 4;
        words.push_back(isa::encode(isa::make_svc(
            static_cast<u8>(tz::Service::kTracesLogLoopCondition))));
        words.push_back(isa::encode(isa::make_branch(
            Op::B, isa::branch_offset(veneer_base + 8, p.loop->header))));
        break;
      }
    }
    program.append_words(words);
    record.veneer_end = program.end();
    result.manifest.veneers.push_back(record);
  }

  // Patch sites.
  for (const auto& record : result.manifest.veneers) {
    switch (record.kind) {
      case VeneerKind::IndirectCall:
        program.set_instruction(record.site,
                                isa::make_branch(Op::BL, isa::branch_offset(
                                                             record.site,
                                                             record.veneer_base)));
        break;
      default:
        program.set_instruction(record.site,
                                isa::make_branch(Op::B, isa::branch_offset(
                                                            record.site,
                                                            record.veneer_base)));
        break;
    }
  }

  result.manifest.code_begin = code_begin;
  result.manifest.code_end = code_end;
  result.manifest.image_end = program.end();
  for (const auto& [site, simple] : loops.simple_loops) {
    if (loops.bcc_roles.at(site) == BccRole::Deterministic) {
      result.manifest.deterministic_loops[site] = simple;
    }
  }
  result.veneer_count = static_cast<u32>(result.manifest.veneers.size());
  result.rewritten_bytes = program.size();
  return result;
}

}  // namespace raptrack::instr
