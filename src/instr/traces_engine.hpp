// TRACES Secure-World logging engine: services the per-branch SVCs that the
// instrumentation inserts, maintaining an optimized CF_Log —
//   * conditional branches -> packed taken/not-taken bits (32 per word),
//   * indirect targets      -> 4-byte addresses, run-length encoded,
//   * loop conditions       -> 4-byte values,
// with capacity-triggered partial-report flushes. Byte accounting feeds the
// CF_Log-size figures (1a, 9); the per-call context-switch cycle costs feed
// the runtime figures (1b, 8).
#pragma once

#include <functional>
#include <vector>

#include "asm/program.hpp"
#include "cpu/executor.hpp"
#include "instr/traces_rewriter.hpp"
#include "mem/memory_map.hpp"
#include "tz/secure_monitor.hpp"

namespace raptrack::instr {

/// One decoded (verifier-facing) log stream set. Streams are consumed in
/// program-replay order; the replayer knows which stream each site reads.
struct TracesLog {
  std::vector<bool> direction_bits;  ///< conditional outcomes, in order
  std::vector<Address> indirect_targets;  ///< RLE-expanded, in order
  std::vector<u32> loop_conditions;       ///< in order
};

class TracesEngine {
 public:
  /// `capacity_bytes` models the Secure-World CF_Log buffer; 0 disables
  /// partial-report flushing (unbounded log). `bit_packed` selects the
  /// aggressive 1-bit-per-conditional encoding; the default logs one word
  /// per conditional outcome (the C-FLAT/ScaRR-lineage encoding the paper's
  /// Fig 9 "similarly sized CF_Logs" comparison implies).
  TracesEngine(const Program& program, const TracesManifest& manifest,
               mem::MemoryMap& memory, u32 capacity_bytes = 0,
               bool bit_packed = false);

  /// Register kTracesLogBranch / kTracesLogLoopCondition on the monitor.
  void attach(tz::SecureMonitor& monitor);

  /// Called when the capacity is reached, with the flushed window's stream
  /// contents (the prover signs and transmits them as a partial report).
  using FlushHandler = std::function<void(const TracesLog& window)>;
  void set_flush_handler(FlushHandler handler) {
    flush_handler_ = std::move(handler);
  }

  /// Streams recorded since the last flush (the final report's payload).
  TracesLog window() const;

  /// Compressed CF_Log size in bytes (across flushes, cumulative).
  u64 total_log_bytes() const;
  /// Bytes currently buffered (since the last flush).
  u64 buffered_bytes() const { return current_bytes(); }
  u32 partial_flushes() const { return partial_flushes_; }
  u64 events_logged() const { return events_; }

  /// Full log for the Verifier (concatenation of flushed + buffered, in
  /// order). In the protocol each flush is a signed partial report; the
  /// concatenation is what a complete verification session sees.
  const TracesLog& log() const { return log_; }

  void reset();

 private:
  Cycles log_branch(cpu::CpuState& state);
  Cycles log_loop_condition(cpu::CpuState& state);
  u64 current_bytes() const;
  void maybe_flush();

  const Program* program_;
  const TracesManifest* manifest_;
  mem::MemoryMap* memory_;
  u32 capacity_bytes_;
  bool bit_packed_;

  TracesLog log_;  // cumulative, for verification
  FlushHandler flush_handler_;
  // Window start offsets into the cumulative streams.
  size_t window_bits_start_ = 0;
  size_t window_addrs_start_ = 0;
  size_t window_loops_start_ = 0;
  // Compressed-size accounting for the *current* buffer window.
  u64 window_bits_ = 0;
  u64 window_addr_bytes_ = 0;
  u64 window_loop_bytes_ = 0;
  u64 flushed_bytes_ = 0;
  Address last_indirect_target_ = 0;
  bool in_run_ = false;
  bool have_last_target_ = false;
  u32 partial_flushes_ = 0;
  u64 events_ = 0;
};

}  // namespace raptrack::instr
