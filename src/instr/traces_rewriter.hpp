// TRACES-like instrumentation baseline (Caulfield et al., "TRACES:
// TEE-based runtime auditing for commodity embedded systems" — the paper's
// state-of-the-art comparator). Every non-deterministic branch is routed
// through a veneer that performs an SVC into the Secure World, which logs
// the branch outcome before the (relocated) original instruction executes.
// The same state-of-the-art CF_Log optimizations the paper credits TRACES
// with are implemented: packed taken/not-taken bits for conditional
// branches, run-length encoding of repeated indirect targets, loop-condition
// logging for simple loops, and full elision of statically deterministic
// loops.
//
// The cost structure is the instrumentation-based one the paper measures:
// one Non-Secure -> Secure context-switch round trip per logged event.
#pragma once

#include <optional>
#include <vector>

#include "asm/program.hpp"
#include "cfg/loop_analysis.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace raptrack::instr {

enum class VeneerKind : u8 {
  IndirectCall,
  IndirectJump,
  ReturnPop,
  Conditional,    ///< logs a packed direction bit
  LoopCondition,  ///< logs the loop-condition value (shared optimization)
};

struct VeneerRecord {
  VeneerKind kind = VeneerKind::IndirectCall;
  Address veneer_base = 0;
  Address veneer_end = 0;     ///< exclusive
  Address svc_addr = 0;       ///< the SVC instruction inside the veneer
  Address site = 0;           ///< original instruction address
  isa::Instruction original;  ///< original (or displaced preheader) instruction
  Address taken_target = 0;   ///< Conditional: original taken target
  Address resume = 0;         ///< Conditional: fall-through resume address
  std::optional<cfg::SimpleLoop> loop;  ///< LoopCondition only
};

struct TracesManifest {
  Address code_begin = 0;
  Address code_end = 0;
  Address image_end = 0;
  std::vector<VeneerRecord> veneers;
  std::map<Address, cfg::SimpleLoop> deterministic_loops;

  const VeneerRecord* veneer_at_svc(Address svc_addr) const;
  const VeneerRecord* veneer_containing(Address addr) const;
};

struct TracesOptions {
  bool loop_optimization = true;
  bool deterministic_loop_elision = true;
  std::vector<Address> extra_cfg_roots;
};

struct TracesResult {
  Program program;
  TracesManifest manifest;
  u32 original_bytes = 0;
  u32 rewritten_bytes = 0;
  u32 veneer_count = 0;
};

TracesResult rewrite_for_traces(const Program& original, Address entry,
                                Address code_begin, Address code_end,
                                const TracesOptions& options = {});

}  // namespace raptrack::instr
