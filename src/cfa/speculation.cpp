#include "cfa/speculation.hpp"

#include <algorithm>
#include <map>

namespace raptrack::cfa {

namespace {

constexpr u8 kLiteralTag = 0x00;
constexpr u8 kReferenceTag = 0x01;

using PacketKey = std::pair<u32, u32>;

PacketKey key_of(const trace::BranchPacket& packet) {
  // The A-bit is a hardware artifact of trace restarts, not control-flow
  // information; speculation matches on (source, destination) only and the
  // decoder re-synthesizes packets with the A-bit cleared. The replayer
  // never consults the bit.
  return {packet.source, packet.destination};
}

std::vector<PacketKey> keys_of(const trace::PacketLog& packets) {
  std::vector<PacketKey> keys;
  keys.reserve(packets.size());
  for (const auto& packet : packets) keys.push_back(key_of(packet));
  return keys;
}

}  // namespace

SpeculationDict mine_subpaths(const trace::PacketLog& profile,
                              const MiningOptions& options) {
  SpeculationDict dict;
  if (profile.size() < options.min_length) return dict;
  const std::vector<PacketKey> keys = keys_of(profile);

  // Greedy longest-first mining: for each candidate length (descending),
  // count every window; keep windows that occur often enough and don't
  // overlap material already claimed by a longer selection.
  std::vector<bool> claimed(keys.size(), false);
  const u32 max_len = std::min<u32>(options.max_length,
                                    static_cast<u32>(keys.size()));
  for (u32 length = max_len; length >= options.min_length; --length) {
    std::map<std::vector<PacketKey>, std::vector<size_t>> windows;
    for (size_t start = 0; start + length <= keys.size(); ++start) {
      bool free = true;
      for (size_t i = start; i < start + length && free; ++i) {
        free = !claimed[i];
      }
      if (!free) continue;
      windows[{keys.begin() + static_cast<long>(start),
               keys.begin() + static_cast<long>(start + length)}]
          .push_back(start);
    }
    // Deterministic order: std::map iterates keys lexicographically.
    for (const auto& [window, starts] : windows) {
      if (dict.entries.size() >= options.max_entries) return dict;
      // Count non-overlapping occurrences.
      std::vector<size_t> selected;
      size_t last_end = 0;
      for (const size_t start : starts) {
        if (start >= last_end) {
          selected.push_back(start);
          last_end = start + length;
        }
      }
      if (selected.size() < options.min_occurrences) continue;
      SubPath sub_path;
      for (const auto& [src, dst] : window) {
        sub_path.packets.push_back({src, dst, false});
      }
      dict.entries.push_back(std::move(sub_path));
      for (const size_t start : selected) {
        for (size_t i = start; i < start + length; ++i) claimed[i] = true;
      }
    }
  }
  return dict;
}

std::vector<u8> encode_speculated(const trace::PacketLog& packets,
                                  const SpeculationDict& dict) {
  if (dict.entries.size() > 255) throw Error("speculation: dictionary too large");
  const std::vector<PacketKey> keys = keys_of(packets);

  // Pre-compute dictionary keys, longest entries first for greedy matching.
  std::vector<std::pair<std::vector<PacketKey>, u8>> entries;
  for (size_t id = 0; id < dict.entries.size(); ++id) {
    entries.emplace_back(keys_of(dict.entries[id].packets),
                         static_cast<u8>(id));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });

  std::vector<u8> out;
  const auto put_u32 = [&](u32 v) {
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
  };

  size_t pos = 0;
  while (pos < keys.size()) {
    bool matched = false;
    for (const auto& [entry_keys, id] : entries) {
      if (entry_keys.empty() || pos + entry_keys.size() > keys.size()) continue;
      if (std::equal(entry_keys.begin(), entry_keys.end(),
                     keys.begin() + static_cast<long>(pos))) {
        out.push_back(kReferenceTag);
        out.push_back(id);
        pos += entry_keys.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back(kLiteralTag);
      put_u32(packets[pos].source_word());
      put_u32(packets[pos].destination_word());
      ++pos;
    }
  }
  return out;
}

trace::PacketLog decode_speculated(std::span<const u8> bytes,
                                   const SpeculationDict& dict) {
  trace::PacketLog out;
  size_t pos = 0;
  const auto get_u32 = [&]() -> u32 {
    if (pos + 4 > bytes.size()) throw Error("speculation: truncated stream");
    const u32 v = static_cast<u32>(bytes[pos]) |
                  (static_cast<u32>(bytes[pos + 1]) << 8) |
                  (static_cast<u32>(bytes[pos + 2]) << 16) |
                  (static_cast<u32>(bytes[pos + 3]) << 24);
    pos += 4;
    return v;
  };
  while (pos < bytes.size()) {
    const u8 tag = bytes[pos++];
    if (tag == kLiteralTag) {
      const u32 src = get_u32();
      const u32 dst = get_u32();
      out.push_back(trace::BranchPacket::from_words(src, dst));
    } else if (tag == kReferenceTag) {
      if (pos >= bytes.size()) throw Error("speculation: truncated reference");
      const u8 id = bytes[pos++];
      if (id >= dict.entries.size()) {
        throw Error("speculation: reference out of range");
      }
      const auto& packets = dict.entries[id].packets;
      out.insert(out.end(), packets.begin(), packets.end());
    } else {
      throw Error("speculation: unknown token tag");
    }
  }
  return out;
}

std::vector<u8> serialize_dict(const SpeculationDict& dict) {
  std::vector<u8> out;
  const auto put_u32 = [&](u32 v) {
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
  };
  put_u32(0x53504543);  // "SPEC"
  put_u32(static_cast<u32>(dict.entries.size()));
  for (const auto& entry : dict.entries) {
    put_u32(static_cast<u32>(entry.packets.size()));
    for (const auto& packet : entry.packets) {
      put_u32(packet.source_word());
      put_u32(packet.destination_word());
    }
  }
  return out;
}

SpeculationDict deserialize_dict(std::span<const u8> bytes) {
  size_t pos = 0;
  const auto get_u32 = [&]() -> u32 {
    if (pos + 4 > bytes.size()) throw Error("speculation dict: truncated");
    const u32 v = static_cast<u32>(bytes[pos]) |
                  (static_cast<u32>(bytes[pos + 1]) << 8) |
                  (static_cast<u32>(bytes[pos + 2]) << 16) |
                  (static_cast<u32>(bytes[pos + 3]) << 24);
    pos += 4;
    return v;
  };
  if (get_u32() != 0x53504543) throw Error("speculation dict: bad magic");
  SpeculationDict dict;
  const u32 count = get_u32();
  for (u32 i = 0; i < count; ++i) {
    SubPath entry;
    const u32 length = get_u32();
    for (u32 j = 0; j < length; ++j) {
      const u32 src = get_u32();
      const u32 dst = get_u32();
      entry.packets.push_back(trace::BranchPacket::from_words(src, dst));
    }
    dict.entries.push_back(std::move(entry));
  }
  if (pos != bytes.size()) throw Error("speculation dict: trailing bytes");
  return dict;
}

std::vector<u8> encode_spec_final(const SpecFinalPayload& payload,
                                  const SpeculationDict& dict) {
  const std::vector<u8> encoded = encode_speculated(payload.packets, dict);
  std::vector<u8> out;
  const auto put_u32 = [&](u32 v) {
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
  };
  put_u32(static_cast<u32>(encoded.size()));
  out.insert(out.end(), encoded.begin(), encoded.end());
  put_u32(static_cast<u32>(payload.loop_values.size()));
  for (const u32 value : payload.loop_values) put_u32(value);
  return out;
}

SpecFinalPayload decode_spec_final(std::span<const u8> bytes,
                                   const SpeculationDict& dict) {
  size_t pos = 0;
  const auto get_u32 = [&]() -> u32 {
    if (pos + 4 > bytes.size()) throw Error("spec-final: truncated");
    const u32 v = static_cast<u32>(bytes[pos]) |
                  (static_cast<u32>(bytes[pos + 1]) << 8) |
                  (static_cast<u32>(bytes[pos + 2]) << 16) |
                  (static_cast<u32>(bytes[pos + 3]) << 24);
    pos += 4;
    return v;
  };
  SpecFinalPayload payload;
  const u32 encoded_length = get_u32();
  if (pos + encoded_length > bytes.size()) throw Error("spec-final: truncated");
  payload.packets =
      decode_speculated(bytes.subspan(pos, encoded_length), dict);
  pos += encoded_length;
  const u32 loop_count = get_u32();
  for (u32 i = 0; i < loop_count; ++i) payload.loop_values.push_back(get_u32());
  if (pos != bytes.size()) throw Error("spec-final: trailing bytes");
  return payload;
}

}  // namespace raptrack::cfa
