// Prover-side attestation sessions for the four methods the paper compares:
//   * RapProver      — RAP-Track: DWT-gated MTB tracing of the rewritten
//                      binary, loop-condition SVCs, partial reports (§IV).
//   * NaiveProver    — naive MTB: TSTARTEN always-on over the unmodified
//                      binary (the Figure 1 baseline).
//   * TracesProver   — TRACES-style instrumentation with Secure-World
//                      logging on every non-deterministic branch.
//   * BaselineRunner — the unmodified application with no CFA at all
//                      (runtime baseline of Figure 8).
//
// Each session drives a Machine through the §II-C protocol: receive Chal,
// lock APP memory via the NS-MPU, measure H_MEM, configure tracing, run,
// and emit signed (partial + final) reports.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "cfa/report.hpp"
#include "cfa/speculation.hpp"
#include "instr/traces_engine.hpp"
#include "rewrite/manifest.hpp"
#include "sim/machine.hpp"

namespace raptrack::cfa {

struct RunMetrics {
  Cycles exec_cycles = 0;          ///< app run incl. instrumentation + SVCs
  Cycles attest_setup_cycles = 0;  ///< H_MEM hashing + MPU/trace configuration
  Cycles pause_cycles = 0;         ///< partial-report generation + transmission
  Cycles final_report_cycles = 0;
  u64 cflog_bytes = 0;             ///< method-specific CF_Log volume
  u32 partial_reports = 0;
  u64 world_switches = 0;
  u64 instructions = 0;
  u32 code_bytes = 0;              ///< deployed image size
  u64 transmitted_evidence_bytes = 0;  ///< total report payload volume
  cpu::HaltReason halt = cpu::HaltReason::Halted;
  std::optional<mem::Fault> fault;
};

struct AttestationRun {
  std::vector<SignedReport> reports;  ///< partials in order, then the final
  RunMetrics metrics;
};

struct SessionOptions {
  /// MTB watermark in bytes (RAP/naive). 0 = whole buffer (one flush per
  /// fill); must be packet-aligned.
  u32 watermark_bytes = 0;
  /// TRACES Secure-World log capacity in bytes; 0 = unbounded.
  u32 traces_capacity_bytes = 0;
  /// TRACES conditional-outcome encoding: word-per-event (default) or the
  /// aggressive 1-bit packing.
  bool traces_bit_packed = false;
  /// SpecCFA-style sub-path dictionary (RAP-Track only). When set, packet
  /// payloads are transmitted in the speculated encoding. Must outlive the
  /// session and match the Verifier's provisioned dictionary.
  const SpeculationDict* speculation = nullptr;
  u64 max_instructions = 200'000'000;

  /// Fault-injection hooks (see src/fault). No-ops when unset.
  /// `post_config_hook` fires after the session has configured tracing and
  /// registered its Secure-World services, just before the app starts —
  /// the window where a glitch can corrupt trace configuration.
  /// `pre_report_hook` fires immediately before each report's evidence is
  /// read out of the MTB (partial and final) — the window where an SEU in
  /// MTB SRAM ends up signed into the report.
  std::function<void(sim::Machine&)> post_config_hook;
  std::function<void(sim::Machine&)> pre_report_hook;
};

/// Shared protocol mechanics (memory lock, H_MEM, report signing).
class ProverBase {
 public:
  ProverBase(crypto::Key key, SessionOptions options)
      : key_(std::move(key)), options_(options) {}

 protected:
  Cycles lock_and_measure(sim::Machine& machine, Address image_base,
                          u32 image_bytes, crypto::Digest& h_mem_out) const;
  SignedReport make_report(const Challenge& chal, const crypto::Digest& h_mem,
                           u32 sequence, bool final_report, PayloadType type,
                           std::vector<u8> payload) const;
  Cycles report_cost(const sim::Machine& machine, size_t payload_bytes) const;

  crypto::Key key_;
  SessionOptions options_;
};

class RapProver : public ProverBase {
 public:
  RapProver(const Program& program, const rewrite::Manifest& manifest,
            Address entry, crypto::Key key, SessionOptions options = {});

  /// Run the full CFA session on `machine` (program gets loaded here).
  AttestationRun attest(sim::Machine& machine, const Challenge& chal);

 private:
  const Program* program_;
  const rewrite::Manifest* manifest_;
  Address entry_;
};

class NaiveProver : public ProverBase {
 public:
  NaiveProver(const Program& program, Address entry, crypto::Key key,
              SessionOptions options = {});

  AttestationRun attest(sim::Machine& machine, const Challenge& chal);

 private:
  const Program* program_;
  Address entry_;
};

class TracesProver : public ProverBase {
 public:
  TracesProver(const Program& program, const instr::TracesManifest& manifest,
               Address entry, crypto::Key key, SessionOptions options = {});

  AttestationRun attest(sim::Machine& machine, const Challenge& chal);

 private:
  const Program* program_;
  const instr::TracesManifest* manifest_;
  Address entry_;
};

/// No CFA: loads and runs the unmodified application, reporting cycles only.
class BaselineRunner {
 public:
  BaselineRunner(const Program& program, Address entry)
      : program_(&program), entry_(entry) {}

  RunMetrics run(sim::Machine& machine,
                 u64 max_instructions = 200'000'000) const;

 private:
  const Program* program_;
  Address entry_;
};

}  // namespace raptrack::cfa
