// SpecCFA-style sub-path speculation (the paper's §V-B points at CF_Log
// transmission as the system bottleneck and cites SpecCFA [57] as the
// application-aware answer). The Verifier mines frequent packet
// sub-sequences from a profiling run and provisions them to the RoT; at
// report time the Secure World replaces each occurrence with a one-byte
// dictionary reference, shrinking the transmitted log without losing any
// information (the Verifier expands before reconstruction, so losslessness
// and all attack checks are untouched).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "trace/branch_packet.hpp"

namespace raptrack::cfa {

/// One speculated sub-path: an exact packet sequence both sides agree on.
struct SubPath {
  trace::PacketLog packets;

  friend bool operator==(const SubPath&, const SubPath&) = default;
};

/// Dictionary of speculated sub-paths (index = reference id, at most 255
/// entries so references fit one byte).
struct SpeculationDict {
  std::vector<SubPath> entries;

  bool empty() const { return entries.empty(); }
};

struct MiningOptions {
  u32 min_length = 3;    ///< shortest sub-path worth a reference
  u32 max_length = 32;   ///< longest candidate window
  u32 min_occurrences = 3;
  u32 max_entries = 64;  ///< dictionary capacity
};

/// Mine a dictionary from a profiling run's packet log: greedy selection of
/// the highest-saving frequent sub-sequences (longest-first, non-nested).
/// Deterministic for a given log.
SpeculationDict mine_subpaths(const trace::PacketLog& profile,
                              const MiningOptions& options = {});

/// Encode a packet log with the dictionary. Wire format per token:
///   0x00, src:u32, dst:u32        — literal packet
///   0x01, id:u8                   — dictionary reference
std::vector<u8> encode_speculated(const trace::PacketLog& packets,
                                  const SpeculationDict& dict);

/// Expand an encoded stream back to the exact packet sequence. Throws Error
/// on malformed input or out-of-range references.
trace::PacketLog decode_speculated(std::span<const u8> bytes,
                                   const SpeculationDict& dict);

/// Serialize/parse a dictionary (provisioning artifact, like the manifest).
std::vector<u8> serialize_dict(const SpeculationDict& dict);
SpeculationDict deserialize_dict(std::span<const u8> bytes);

// -- report payload codecs for speculated evidence ---------------------------

struct SpecFinalPayload {
  trace::PacketLog packets;
  std::vector<u32> loop_values;
};

std::vector<u8> encode_spec_final(const SpecFinalPayload& payload,
                                  const SpeculationDict& dict);
SpecFinalPayload decode_spec_final(std::span<const u8> bytes,
                                   const SpeculationDict& dict);

}  // namespace raptrack::cfa
