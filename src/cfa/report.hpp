// CFA report format and serialization. A report binds the Verifier's
// challenge, the measured program memory (H_MEM), a sequence number (for
// partial reports, §IV-E), and the CF_Log payload under an HMAC-SHA256
// computed with the RoT key (§II-C/D protocol).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/hmac.hpp"
#include "trace/branch_packet.hpp"

namespace raptrack::cfa {

using Challenge = std::array<u8, 16>;

/// Payload discriminator, bound under the MAC.
enum class PayloadType : u8 {
  RapPackets = 1,   ///< partial report: MTB packet chunk
  RapFinal = 2,     ///< final report: packet chunk + loop-condition values
  NaivePackets = 3, ///< naive-MTB chunk (partial or final)
  TracesChunk = 4,  ///< TRACES stream chunk (bits / targets / loop values)
  RapSpecPackets = 5,  ///< partial chunk, SpecCFA-style speculated encoding
  RapSpecFinal = 6,    ///< final report, speculated packets + loop values
};

struct SignedReport {
  Challenge chal{};
  crypto::Digest h_mem{};
  u32 sequence = 0;
  bool final_report = false;
  PayloadType type = PayloadType::RapPackets;
  std::vector<u8> payload;
  crypto::Digest mac{};

  /// Canonical byte string the MAC covers.
  std::vector<u8> mac_input() const;
  void sign(std::span<const u8> key);
  bool verify(std::span<const u8> key) const;
};

// -- payload codecs ---------------------------------------------------------

std::vector<u8> encode_packets(const trace::PacketLog& packets);
trace::PacketLog decode_packets(std::span<const u8> payload);

struct RapFinalPayload {
  trace::PacketLog packets;
  std::vector<u32> loop_values;
};
std::vector<u8> encode_rap_final(const RapFinalPayload& payload);
RapFinalPayload decode_rap_final(std::span<const u8> payload);

struct TracesChunkPayload {
  std::vector<bool> direction_bits;
  std::vector<Address> indirect_targets;
  std::vector<u32> loop_values;
};
std::vector<u8> encode_traces_chunk(const TracesChunkPayload& payload);
TracesChunkPayload decode_traces_chunk(std::span<const u8> payload);

}  // namespace raptrack::cfa
