// CFA report format and serialization. A report binds the Verifier's
// challenge, the measured program memory (H_MEM), a sequence number (for
// partial reports, §IV-E), and the CF_Log payload under an HMAC-SHA256
// computed with the RoT key (§II-C/D protocol).
//
// Decoding is adversary-facing: report bytes travel over an untrusted link,
// so every decoder exists in a typed-result form (`try_decode_*`) that turns
// arbitrary hostile bytes into an error value — never a crash, never an
// out-of-bounds read, never an attacker-sized allocation. The throwing
// wrappers remain for internal callers that already hold authenticated data.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "crypto/hmac.hpp"
#include "trace/branch_packet.hpp"

namespace raptrack::trace {
class Mtb;
}

namespace raptrack::cfa {

using Challenge = std::array<u8, 16>;

/// Payload discriminator, bound under the MAC.
enum class PayloadType : u8 {
  RapPackets = 1,   ///< partial report: MTB packet chunk
  RapFinal = 2,     ///< final report: packet chunk + loop-condition values
  NaivePackets = 3, ///< naive-MTB chunk (partial or final)
  TracesChunk = 4,  ///< TRACES stream chunk (bits / targets / loop values)
  RapSpecPackets = 5,  ///< partial chunk, SpecCFA-style speculated encoding
  RapSpecFinal = 6,    ///< final report, speculated packets + loop values
};

/// Is `value` one of the defined PayloadType discriminants?
bool payload_type_valid(u8 value);

struct SignedReport {
  Challenge chal{};
  crypto::Digest h_mem{};
  u32 sequence = 0;
  bool final_report = false;
  PayloadType type = PayloadType::RapPackets;
  std::vector<u8> payload;
  crypto::Digest mac{};

  /// Canonical byte string the MAC covers.
  std::vector<u8> mac_input() const;
  void sign(std::span<const u8> key);
  bool verify(std::span<const u8> key) const;

  friend bool operator==(const SignedReport&, const SignedReport&) = default;
};

// -- typed decode results ----------------------------------------------------

/// Result of decoding untrusted bytes: either a value or an error string.
template <typename T>
struct Decoded {
  std::optional<T> value;
  std::string error;

  bool ok() const { return value.has_value(); }
  T& operator*() { return *value; }
  const T& operator*() const { return *value; }
  T* operator->() { return &*value; }
  const T* operator->() const { return &*value; }

  static Decoded success(T v) { return {std::move(v), {}}; }
  static Decoded failure(std::string why) { return {std::nullopt, std::move(why)}; }
};

// -- payload codecs ---------------------------------------------------------

std::vector<u8> encode_packets(const trace::PacketLog& packets);
/// Same wire bytes as encode_packets(mtb.read_log()), but copied straight
/// from the MTB buffer (which already stores packets in wire layout) —
/// the prover's per-report path skips the intermediate PacketLog.
std::vector<u8> encode_packets(const trace::Mtb& mtb);
Decoded<trace::PacketLog> try_decode_packets(std::span<const u8> payload);
trace::PacketLog decode_packets(std::span<const u8> payload);

struct RapFinalPayload {
  trace::PacketLog packets;
  std::vector<u32> loop_values;
};
std::vector<u8> encode_rap_final(const RapFinalPayload& payload);
/// Fused variant of encode_rap_final for the prover (see encode_packets
/// overload above): packets come straight from the MTB buffer.
std::vector<u8> encode_rap_final(const trace::Mtb& mtb,
                                 const std::vector<u32>& loop_values);
Decoded<RapFinalPayload> try_decode_rap_final(std::span<const u8> payload);
RapFinalPayload decode_rap_final(std::span<const u8> payload);

struct TracesChunkPayload {
  std::vector<bool> direction_bits;
  std::vector<Address> indirect_targets;
  std::vector<u32> loop_values;
};
std::vector<u8> encode_traces_chunk(const TracesChunkPayload& payload);
Decoded<TracesChunkPayload> try_decode_traces_chunk(std::span<const u8> payload);
TracesChunkPayload decode_traces_chunk(std::span<const u8> payload);

// -- report wire format ------------------------------------------------------
//
// The transport encoding of a SignedReport (what actually crosses the
// Prv -> Vrf link):
//   "RPT1" | chal[16] | h_mem[32] | sequence:u32 | final:u8 | type:u8 |
//   payload_len:u32 | payload | mac[32]
// A chain is a count-prefixed concatenation:
//   "RPC1" | count:u32 | report...
//
// Note the record layout after the magic is byte-for-byte the MAC input
// (SignedReport::mac_input) followed by the MAC itself — so a receiver can
// authenticate a report directly off the wire buffer, without first copying
// its fields out. ReportView below is that zero-copy admission path.

std::vector<u8> encode_report(const SignedReport& report);
Decoded<SignedReport> try_decode_report(std::span<const u8> bytes);

std::vector<u8> encode_report_chain(const std::vector<SignedReport>& chain);
/// Span form: the delivery layer reassembles chains from per-datagram
/// reports and re-frames them without first copying into a vector.
std::vector<u8> encode_report_chain(std::span<const SignedReport> chain);
Decoded<std::vector<SignedReport>> try_decode_report_chain(
    std::span<const u8> bytes);

// -- zero-copy admission -----------------------------------------------------

/// A non-owning view of one report. Two backings:
///   * wire-backed — spans point into the receive buffer and `mac_input` is
///     the contiguous signed region of the record (header fields ||
///     payload), letting the MAC be checked without any intermediate copy;
///   * field-backed (`of`) — spans point into a SignedReport's members and
///     `mac_input` is empty (the header is re-streamed on verify).
/// Views borrow their backing storage: the buffer/report must outlive them.
struct ReportView {
  Challenge chal{};
  std::span<const u8> h_mem;   ///< 32 bytes
  u32 sequence = 0;
  bool final_report = false;
  PayloadType type = PayloadType::RapPackets;
  std::span<const u8> payload;
  std::span<const u8> mac;     ///< 32 bytes
  std::span<const u8> mac_input;  ///< wire-backed only; empty otherwise

  static ReportView of(const SignedReport& report);

  /// MAC check from a precomputed key schedule, streamed off the backing
  /// buffer. Equivalent to SignedReport::verify(key) for the same bytes.
  bool verify(const crypto::HmacKeySchedule& schedule) const;

  /// Batch-verification claim (wire-backed views only — field-backed views
  /// have no contiguous MAC input and must use verify()).
  crypto::MacClaim claim() const { return {mac_input, mac}; }

  /// Field-and-payload byte equality, matching SignedReport::operator== on
  /// the same reports (duplicate/equivocation detection during chain resync).
  bool same_bytes(const ReportView& other) const;

  /// Deep copy into an owning SignedReport.
  SignedReport materialize() const;
};

/// Parse a report chain into views over `bytes` without copying payloads.
/// Performs exactly the structural validation of try_decode_report_chain —
/// same checks, same error strings — but defers all byte copies until (and
/// unless) the caller materializes a view.
Decoded<std::vector<ReportView>> try_parse_chain_views(
    std::span<const u8> bytes);

}  // namespace raptrack::cfa
