#include "cfa/provers.hpp"

#include "common/hex.hpp"

namespace raptrack::cfa {

Cycles ProverBase::lock_and_measure(sim::Machine& machine, Address image_base,
                                    u32 image_bytes,
                                    crypto::Digest& h_mem_out) const {
  // §IV-A: make APP's binary non-writable from the Non-Secure world and
  // lock the NS-MPU so the configuration cannot be undone.
  auto& mpu = machine.bus().ns_mpu();
  mpu.configure(0, {.enabled = true,
                    .base = image_base,
                    .limit = image_base + image_bytes - 1,
                    .allow_read = true,
                    .allow_write = false,
                    .allow_execute = true});
  mpu.lock();

  // Hash the deployed image exactly as it sits in flash.
  const auto bytes = machine.memory().dump(image_base, image_bytes);
  h_mem_out = crypto::Sha256::hash(bytes);

  // H_MEM time is when the code is provably immutable: predecode it into
  // the simulator's fast-path cache (a simulator concern, not a protocol
  // step — it costs no modeled cycles and cannot change semantics: any
  // later write into the range invalidates the affected lines).
  machine.predecode(image_base, image_bytes);

  const auto& costs = machine.monitor().costs();
  return static_cast<Cycles>(image_bytes) * costs.hash_per_byte + 200;
}

SignedReport ProverBase::make_report(const Challenge& chal,
                                     const crypto::Digest& h_mem, u32 sequence,
                                     bool final_report, PayloadType type,
                                     std::vector<u8> payload) const {
  SignedReport report;
  report.chal = chal;
  report.h_mem = h_mem;
  report.sequence = sequence;
  report.final_report = final_report;
  report.type = type;
  report.payload = std::move(payload);
  report.sign(key_);
  return report;
}

Cycles ProverBase::report_cost(const sim::Machine& machine,
                               size_t payload_bytes) const {
  const auto& costs = machine.monitor().costs();
  return costs.report_overhead + costs.sign_fixed +
         static_cast<Cycles>(payload_bytes) *
             (costs.hash_per_byte + costs.transmit_per_byte);
}

// ---------------------------------------------------------------------------
// RAP-Track
// ---------------------------------------------------------------------------

RapProver::RapProver(const Program& program, const rewrite::Manifest& manifest,
                     Address entry, crypto::Key key, SessionOptions options)
    : ProverBase(std::move(key), options),
      program_(&program),
      manifest_(&manifest),
      entry_(entry) {}

AttestationRun RapProver::attest(sim::Machine& machine, const Challenge& chal) {
  AttestationRun run;
  machine.load_program(*program_);
  run.metrics.code_bytes = program_->size();

  crypto::Digest h_mem;
  run.metrics.attest_setup_cycles =
      lock_and_measure(machine, program_->base(), program_->size(), h_mem);

  // Configure DWT range gating (§IV-B) and the MTB.
  machine.dwt().configure_rap_track(manifest_->mtbar_base,
                                    manifest_->mtbar_limit,
                                    manifest_->mtbdr_base,
                                    manifest_->mtbdr_limit);
  auto& mtb = machine.mtb();
  mtb.set_enabled(true);
  const u32 watermark = options_.watermark_bytes != 0 ? options_.watermark_bytes
                                                      : mtb.buffer_bytes();
  mtb.set_watermark(watermark);

  u32 sequence = 0;
  mtb.set_watermark_handler([&] {
    // §IV-E: generate and transmit a partial report, reset the head pointer,
    // and resume APP over the same buffer memory. With a provisioned
    // sub-path dictionary the chunk travels in the speculated encoding.
    if (options_.pre_report_hook) options_.pre_report_hook(machine);
    auto report =
        options_.speculation != nullptr
            ? make_report(chal, h_mem, sequence++, false,
                          PayloadType::RapSpecPackets,
                          encode_speculated(mtb.read_log(),
                                            *options_.speculation))
            : make_report(chal, h_mem, sequence++, false,
                          PayloadType::RapPackets, encode_packets(mtb));
    const Cycles pause = report_cost(machine, report.payload.size());
    machine.cpu().add_cycles(pause);
    run.metrics.pause_cycles += pause;
    ++run.metrics.partial_reports;
    run.reports.push_back(std::move(report));
    mtb.reset_position();
  });

  // Loop-condition logging service (§IV-D).
  std::vector<u32> loop_values;
  machine.monitor().register_service(
      tz::Service::kRapLogLoopCondition, [&](cpu::CpuState& state) -> Cycles {
        const Address svc_addr = state.pc() - 4;
        const auto* veneer = manifest_->veneer_at_svc(svc_addr);
        if (!veneer) {
          throw Error("RapProver: loop SVC with no veneer at " + hex32(svc_addr));
        }
        loop_values.push_back(state.reg(veneer->loop.iterator));
        return machine.monitor().costs().loop_cond_log;
      });

  if (options_.post_config_hook) options_.post_config_hook(machine);
  machine.reset_cpu(entry_);
  run.metrics.halt = machine.run(options_.max_instructions);
  run.metrics.fault = machine.cpu().fault();
  run.metrics.exec_cycles = machine.cpu().cycles();
  run.metrics.instructions = machine.cpu().instructions_retired();
  run.metrics.world_switches = machine.monitor().world_switches();

  // Final report: remaining packets + the loop-condition stream.
  if (options_.pre_report_hook) options_.pre_report_hook(machine);
  cfa::SignedReport final_report;
  if (options_.speculation != nullptr) {
    SpecFinalPayload payload{mtb.read_log(), loop_values};
    final_report =
        make_report(chal, h_mem, sequence, true, PayloadType::RapSpecFinal,
                    encode_spec_final(payload, *options_.speculation));
  } else {
    final_report = make_report(chal, h_mem, sequence, true,
                               PayloadType::RapFinal,
                               encode_rap_final(mtb, loop_values));
  }
  run.metrics.final_report_cycles =
      report_cost(machine, final_report.payload.size());
  run.reports.push_back(std::move(final_report));

  run.metrics.cflog_bytes =
      mtb.total_bytes_written() + loop_values.size() * 4;
  for (const auto& report : run.reports) {
    run.metrics.transmitted_evidence_bytes += report.payload.size();
  }
  return run;
}

// ---------------------------------------------------------------------------
// Naive MTB
// ---------------------------------------------------------------------------

NaiveProver::NaiveProver(const Program& program, Address entry, crypto::Key key,
                         SessionOptions options)
    : ProverBase(std::move(key), options), program_(&program), entry_(entry) {}

AttestationRun NaiveProver::attest(sim::Machine& machine,
                                   const Challenge& chal) {
  AttestationRun run;
  machine.load_program(*program_);
  run.metrics.code_bytes = program_->size();

  crypto::Digest h_mem;
  run.metrics.attest_setup_cycles =
      lock_and_measure(machine, program_->base(), program_->size(), h_mem);

  auto& mtb = machine.mtb();
  mtb.set_enabled(true);
  mtb.set_tstart_enable(true);  // record every non-sequential transfer
  const u32 watermark = options_.watermark_bytes != 0 ? options_.watermark_bytes
                                                      : mtb.buffer_bytes();
  mtb.set_watermark(watermark);

  u32 sequence = 0;
  mtb.set_watermark_handler([&] {
    if (options_.pre_report_hook) options_.pre_report_hook(machine);
    auto report = make_report(chal, h_mem, sequence++, false,
                              PayloadType::NaivePackets,
                              encode_packets(mtb));
    const Cycles pause = report_cost(machine, report.payload.size());
    machine.cpu().add_cycles(pause);
    run.metrics.pause_cycles += pause;
    ++run.metrics.partial_reports;
    run.reports.push_back(std::move(report));
    mtb.reset_position();
  });

  if (options_.post_config_hook) options_.post_config_hook(machine);
  machine.reset_cpu(entry_);
  run.metrics.halt = machine.run(options_.max_instructions);
  run.metrics.fault = machine.cpu().fault();
  run.metrics.exec_cycles = machine.cpu().cycles();
  run.metrics.instructions = machine.cpu().instructions_retired();
  run.metrics.world_switches = machine.monitor().world_switches();

  if (options_.pre_report_hook) options_.pre_report_hook(machine);
  auto final = make_report(chal, h_mem, sequence, true,
                           PayloadType::NaivePackets,
                           encode_packets(mtb));
  run.metrics.final_report_cycles = report_cost(machine, final.payload.size());
  run.reports.push_back(std::move(final));

  run.metrics.cflog_bytes = mtb.total_bytes_written();
  for (const auto& report : run.reports) {
    run.metrics.transmitted_evidence_bytes += report.payload.size();
  }
  return run;
}

// ---------------------------------------------------------------------------
// TRACES-style instrumentation
// ---------------------------------------------------------------------------

TracesProver::TracesProver(const Program& program,
                           const instr::TracesManifest& manifest, Address entry,
                           crypto::Key key, SessionOptions options)
    : ProverBase(std::move(key), options),
      program_(&program),
      manifest_(&manifest),
      entry_(entry) {}

AttestationRun TracesProver::attest(sim::Machine& machine,
                                    const Challenge& chal) {
  AttestationRun run;
  machine.load_program(*program_);
  run.metrics.code_bytes = program_->size();

  crypto::Digest h_mem;
  run.metrics.attest_setup_cycles =
      lock_and_measure(machine, program_->base(), program_->size(), h_mem);

  instr::TracesEngine engine(*program_, *manifest_, machine.memory(),
                             options_.traces_capacity_bytes,
                             options_.traces_bit_packed);
  engine.attach(machine.monitor());

  // Partial reports: each capacity flush is signed and transmitted, pausing
  // the application (the instrumentation analogue of §IV-E).
  u32 sequence = 0;
  engine.set_flush_handler([&](const instr::TracesLog& window) {
    TracesChunkPayload payload{window.direction_bits, window.indirect_targets,
                               window.loop_conditions};
    auto report = make_report(chal, h_mem, sequence++, false,
                              PayloadType::TracesChunk,
                              encode_traces_chunk(payload));
    const Cycles pause = report_cost(machine, report.payload.size());
    machine.cpu().add_cycles(pause);
    run.metrics.pause_cycles += pause;
    ++run.metrics.partial_reports;
    run.reports.push_back(std::move(report));
  });

  if (options_.post_config_hook) options_.post_config_hook(machine);
  machine.reset_cpu(entry_);
  run.metrics.halt = machine.run(options_.max_instructions);
  run.metrics.fault = machine.cpu().fault();
  run.metrics.instructions = machine.cpu().instructions_retired();
  run.metrics.world_switches = machine.monitor().world_switches();
  run.metrics.exec_cycles = machine.cpu().cycles();

  const instr::TracesLog window = engine.window();
  TracesChunkPayload payload{window.direction_bits, window.indirect_targets,
                             window.loop_conditions};
  auto final = make_report(chal, h_mem, sequence, true,
                           PayloadType::TracesChunk,
                           encode_traces_chunk(payload));
  run.metrics.final_report_cycles = report_cost(machine, final.payload.size());
  run.reports.push_back(std::move(final));

  run.metrics.cflog_bytes = engine.total_log_bytes();
  for (const auto& report : run.reports) {
    run.metrics.transmitted_evidence_bytes += report.payload.size();
  }
  return run;
}

// ---------------------------------------------------------------------------
// Uninstrumented baseline
// ---------------------------------------------------------------------------

RunMetrics BaselineRunner::run(sim::Machine& machine,
                               u64 max_instructions) const {
  RunMetrics metrics;
  machine.load_program(*program_);
  metrics.code_bytes = program_->size();
  // No CFA session locks memory here, but predecode stays safe: the write
  // watch drops any line the app (or an injector) overwrites.
  machine.predecode(program_->base(), program_->size());
  machine.reset_cpu(entry_);
  metrics.halt = machine.run(max_instructions);
  metrics.fault = machine.cpu().fault();
  metrics.exec_cycles = machine.cpu().cycles();
  metrics.instructions = machine.cpu().instructions_retired();
  return metrics;
}

}  // namespace raptrack::cfa
