#include "cfa/provers.hpp"

#include "common/hex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace raptrack::cfa {

namespace {

// Per-session observability for the prover engines: a span session covering
// the protocol phases (h_mem, trace_config, app_run with nested log_drain
// spans, sign_final) plus a counter flush on completion. Machine-cumulative
// trackers (MTB toggles, monitor world switches) are snapshotted at session
// start so everything published is a per-session delta. Compiles away
// entirely when RAP_OBS is off.
struct AttestObs {
  sim::Machine* machine = nullptr;
  obs::SessionId session = 0;
  u64 mtb_bytes0 = 0;
  u64 mtb_packets0 = 0;
  u64 tstart0 = 0;
  u64 tstop0 = 0;
  u64 watermark0 = 0;
  u64 switches0 = 0;

  AttestObs(const char* method, sim::Machine& m) {
    if constexpr (obs::kEnabled) {
      machine = &m;
      session = obs::tracer().begin_session(std::string("attest.") + method);
      const auto& mtb = m.mtb();
      mtb_bytes0 = mtb.total_bytes_written();
      mtb_packets0 = mtb.packets_recorded();
      tstart0 = mtb.tstart_events();
      tstop0 = mtb.tstop_events();
      watermark0 = mtb.watermark_events();
      switches0 = m.monitor().world_switches();
    }
  }

  obs::SpanTracer::Scope phase(const char* name) {
    return obs::tracer().span(session, name);
  }

  void finish(const char* method, const RunMetrics& metrics,
              const std::vector<SignedReport>& reports, size_t loop_hits) {
    if constexpr (obs::kEnabled) {
      auto& reg = obs::registry();
      reg.counter(std::string("cfa.sessions.") + method).inc();
      reg.counter("cfa.partial_reports").inc(metrics.partial_reports);
      reg.counter("cfa.report_bytes").inc(metrics.transmitted_evidence_bytes);
      reg.counter("cfa.cflog_bytes").inc(metrics.cflog_bytes);
      reg.counter("cfa.loop_svc_hits").inc(loop_hits);
      obs::Histogram sizes = reg.histogram("cfa.report_size_bytes",
                                           {64, 256, 1024, 4096, 16384});
      for (const auto& report : reports) sizes.observe(report.payload.size());
      const auto& mtb = machine->mtb();
      reg.counter("trace.cflog_entries")
          .inc(mtb.packets_recorded() - mtb_packets0);
      reg.counter("trace.cflog_bytes")
          .inc(mtb.total_bytes_written() - mtb_bytes0);
      reg.counter("trace.mtb_tstart_events").inc(mtb.tstart_events() - tstart0);
      reg.counter("trace.mtb_tstop_events").inc(mtb.tstop_events() - tstop0);
      reg.counter("trace.watermark_events")
          .inc(mtb.watermark_events() - watermark0);
      reg.counter("tz.world_switches")
          .inc(machine->monitor().world_switches() - switches0);
    } else {
      (void)method; (void)metrics; (void)reports; (void)loop_hits;
    }
  }
};

}  // namespace

Cycles ProverBase::lock_and_measure(sim::Machine& machine, Address image_base,
                                    u32 image_bytes,
                                    crypto::Digest& h_mem_out) const {
  // §IV-A: make APP's binary non-writable from the Non-Secure world and
  // lock the NS-MPU so the configuration cannot be undone.
  auto& mpu = machine.bus().ns_mpu();
  mpu.configure(0, {.enabled = true,
                    .base = image_base,
                    .limit = image_base + image_bytes - 1,
                    .allow_read = true,
                    .allow_write = false,
                    .allow_execute = true});
  mpu.lock();

  // Hash the deployed image exactly as it sits in flash.
  const auto bytes = machine.memory().dump(image_base, image_bytes);
  h_mem_out = crypto::Sha256::hash(bytes);

  // H_MEM time is when the code is provably immutable: predecode it into
  // the simulator's fast-path cache (a simulator concern, not a protocol
  // step — it costs no modeled cycles and cannot change semantics: any
  // later write into the range invalidates the affected lines).
  machine.predecode(image_base, image_bytes);

  const auto& costs = machine.monitor().costs();
  return static_cast<Cycles>(image_bytes) * costs.hash_per_byte + 200;
}

SignedReport ProverBase::make_report(const Challenge& chal,
                                     const crypto::Digest& h_mem, u32 sequence,
                                     bool final_report, PayloadType type,
                                     std::vector<u8> payload) const {
  SignedReport report;
  report.chal = chal;
  report.h_mem = h_mem;
  report.sequence = sequence;
  report.final_report = final_report;
  report.type = type;
  report.payload = std::move(payload);
  report.sign(key_);
  return report;
}

Cycles ProverBase::report_cost(const sim::Machine& machine,
                               size_t payload_bytes) const {
  const auto& costs = machine.monitor().costs();
  return costs.report_overhead + costs.sign_fixed +
         static_cast<Cycles>(payload_bytes) *
             (costs.hash_per_byte + costs.transmit_per_byte);
}

// ---------------------------------------------------------------------------
// RAP-Track
// ---------------------------------------------------------------------------

RapProver::RapProver(const Program& program, const rewrite::Manifest& manifest,
                     Address entry, crypto::Key key, SessionOptions options)
    : ProverBase(std::move(key), options),
      program_(&program),
      manifest_(&manifest),
      entry_(entry) {}

AttestationRun RapProver::attest(sim::Machine& machine, const Challenge& chal) {
  AttestationRun run;
  AttestObs aobs("rap", machine);
  machine.load_program(*program_);
  run.metrics.code_bytes = program_->size();

  crypto::Digest h_mem;
  {
    auto span = aobs.phase("h_mem");
    run.metrics.attest_setup_cycles =
        lock_and_measure(machine, program_->base(), program_->size(), h_mem);
  }

  // Configure DWT range gating (§IV-B) and the MTB.
  auto& mtb = machine.mtb();
  {
    auto span = aobs.phase("trace_config");
    machine.dwt().configure_rap_track(manifest_->mtbar_base,
                                      manifest_->mtbar_limit,
                                      manifest_->mtbdr_base,
                                      manifest_->mtbdr_limit);
    mtb.set_enabled(true);
    const u32 watermark = options_.watermark_bytes != 0
                              ? options_.watermark_bytes
                              : mtb.buffer_bytes();
    mtb.set_watermark(watermark);
  }

  u32 sequence = 0;
  mtb.set_watermark_handler([&] {
    // §IV-E: generate and transmit a partial report, reset the head pointer,
    // and resume APP over the same buffer memory. With a provisioned
    // sub-path dictionary the chunk travels in the speculated encoding.
    auto drain_span = aobs.phase("log_drain");
    if (options_.pre_report_hook) options_.pre_report_hook(machine);
    auto report =
        options_.speculation != nullptr
            ? make_report(chal, h_mem, sequence++, false,
                          PayloadType::RapSpecPackets,
                          encode_speculated(mtb.read_log(),
                                            *options_.speculation))
            : make_report(chal, h_mem, sequence++, false,
                          PayloadType::RapPackets, encode_packets(mtb));
    drain_span.attr("bytes", report.payload.size());
    const Cycles pause = report_cost(machine, report.payload.size());
    machine.cpu().add_cycles(pause);
    run.metrics.pause_cycles += pause;
    ++run.metrics.partial_reports;
    run.reports.push_back(std::move(report));
    mtb.reset_position();
  });

  // Loop-condition logging service (§IV-D).
  std::vector<u32> loop_values;
  machine.monitor().register_service(
      tz::Service::kRapLogLoopCondition, [&](cpu::CpuState& state) -> Cycles {
        const Address svc_addr = state.pc() - 4;
        const auto* veneer = manifest_->veneer_at_svc(svc_addr);
        if (!veneer) {
          throw Error("RapProver: loop SVC with no veneer at " + hex32(svc_addr));
        }
        loop_values.push_back(state.reg(veneer->loop.iterator));
        return machine.monitor().costs().loop_cond_log;
      });

  if (options_.post_config_hook) options_.post_config_hook(machine);
  machine.reset_cpu(entry_);
  {
    auto span = aobs.phase("app_run");
    run.metrics.halt = machine.run(options_.max_instructions);
  }
  run.metrics.fault = machine.cpu().fault();
  run.metrics.exec_cycles = machine.cpu().cycles();
  run.metrics.instructions = machine.cpu().instructions_retired();
  run.metrics.world_switches = machine.monitor().world_switches();

  // Final report: remaining packets + the loop-condition stream.
  {
    auto span = aobs.phase("sign_final");
    if (options_.pre_report_hook) options_.pre_report_hook(machine);
    cfa::SignedReport final_report;
    if (options_.speculation != nullptr) {
      SpecFinalPayload payload{mtb.read_log(), loop_values};
      final_report =
          make_report(chal, h_mem, sequence, true, PayloadType::RapSpecFinal,
                      encode_spec_final(payload, *options_.speculation));
    } else {
      final_report = make_report(chal, h_mem, sequence, true,
                                 PayloadType::RapFinal,
                                 encode_rap_final(mtb, loop_values));
    }
    span.attr("bytes", final_report.payload.size());
    run.metrics.final_report_cycles =
        report_cost(machine, final_report.payload.size());
    run.reports.push_back(std::move(final_report));
  }

  run.metrics.cflog_bytes =
      mtb.total_bytes_written() + loop_values.size() * 4;
  for (const auto& report : run.reports) {
    run.metrics.transmitted_evidence_bytes += report.payload.size();
  }
  aobs.finish("rap", run.metrics, run.reports, loop_values.size());
  return run;
}

// ---------------------------------------------------------------------------
// Naive MTB
// ---------------------------------------------------------------------------

NaiveProver::NaiveProver(const Program& program, Address entry, crypto::Key key,
                         SessionOptions options)
    : ProverBase(std::move(key), options), program_(&program), entry_(entry) {}

AttestationRun NaiveProver::attest(sim::Machine& machine,
                                   const Challenge& chal) {
  AttestationRun run;
  AttestObs aobs("naive", machine);
  machine.load_program(*program_);
  run.metrics.code_bytes = program_->size();

  crypto::Digest h_mem;
  {
    auto span = aobs.phase("h_mem");
    run.metrics.attest_setup_cycles =
        lock_and_measure(machine, program_->base(), program_->size(), h_mem);
  }

  auto& mtb = machine.mtb();
  {
    auto span = aobs.phase("trace_config");
    mtb.set_enabled(true);
    mtb.set_tstart_enable(true);  // record every non-sequential transfer
    const u32 watermark = options_.watermark_bytes != 0
                              ? options_.watermark_bytes
                              : mtb.buffer_bytes();
    mtb.set_watermark(watermark);
  }

  u32 sequence = 0;
  mtb.set_watermark_handler([&] {
    auto drain_span = aobs.phase("log_drain");
    if (options_.pre_report_hook) options_.pre_report_hook(machine);
    auto report = make_report(chal, h_mem, sequence++, false,
                              PayloadType::NaivePackets,
                              encode_packets(mtb));
    drain_span.attr("bytes", report.payload.size());
    const Cycles pause = report_cost(machine, report.payload.size());
    machine.cpu().add_cycles(pause);
    run.metrics.pause_cycles += pause;
    ++run.metrics.partial_reports;
    run.reports.push_back(std::move(report));
    mtb.reset_position();
  });

  if (options_.post_config_hook) options_.post_config_hook(machine);
  machine.reset_cpu(entry_);
  {
    auto span = aobs.phase("app_run");
    run.metrics.halt = machine.run(options_.max_instructions);
  }
  run.metrics.fault = machine.cpu().fault();
  run.metrics.exec_cycles = machine.cpu().cycles();
  run.metrics.instructions = machine.cpu().instructions_retired();
  run.metrics.world_switches = machine.monitor().world_switches();

  {
    auto span = aobs.phase("sign_final");
    if (options_.pre_report_hook) options_.pre_report_hook(machine);
    auto final = make_report(chal, h_mem, sequence, true,
                             PayloadType::NaivePackets,
                             encode_packets(mtb));
    span.attr("bytes", final.payload.size());
    run.metrics.final_report_cycles =
        report_cost(machine, final.payload.size());
    run.reports.push_back(std::move(final));
  }

  run.metrics.cflog_bytes = mtb.total_bytes_written();
  for (const auto& report : run.reports) {
    run.metrics.transmitted_evidence_bytes += report.payload.size();
  }
  aobs.finish("naive", run.metrics, run.reports, /*loop_hits=*/0);
  return run;
}

// ---------------------------------------------------------------------------
// TRACES-style instrumentation
// ---------------------------------------------------------------------------

TracesProver::TracesProver(const Program& program,
                           const instr::TracesManifest& manifest, Address entry,
                           crypto::Key key, SessionOptions options)
    : ProverBase(std::move(key), options),
      program_(&program),
      manifest_(&manifest),
      entry_(entry) {}

AttestationRun TracesProver::attest(sim::Machine& machine,
                                    const Challenge& chal) {
  AttestationRun run;
  AttestObs aobs("traces", machine);
  machine.load_program(*program_);
  run.metrics.code_bytes = program_->size();

  crypto::Digest h_mem;
  {
    auto span = aobs.phase("h_mem");
    run.metrics.attest_setup_cycles =
        lock_and_measure(machine, program_->base(), program_->size(), h_mem);
  }

  instr::TracesEngine engine(*program_, *manifest_, machine.memory(),
                             options_.traces_capacity_bytes,
                             options_.traces_bit_packed);
  {
    auto span = aobs.phase("trace_config");
    engine.attach(machine.monitor());
  }

  // Partial reports: each capacity flush is signed and transmitted, pausing
  // the application (the instrumentation analogue of §IV-E).
  u32 sequence = 0;
  engine.set_flush_handler([&](const instr::TracesLog& window) {
    auto drain_span = aobs.phase("log_drain");
    TracesChunkPayload payload{window.direction_bits, window.indirect_targets,
                               window.loop_conditions};
    auto report = make_report(chal, h_mem, sequence++, false,
                              PayloadType::TracesChunk,
                              encode_traces_chunk(payload));
    drain_span.attr("bytes", report.payload.size());
    const Cycles pause = report_cost(machine, report.payload.size());
    machine.cpu().add_cycles(pause);
    run.metrics.pause_cycles += pause;
    ++run.metrics.partial_reports;
    run.reports.push_back(std::move(report));
  });

  if (options_.post_config_hook) options_.post_config_hook(machine);
  machine.reset_cpu(entry_);
  {
    auto span = aobs.phase("app_run");
    run.metrics.halt = machine.run(options_.max_instructions);
  }
  run.metrics.fault = machine.cpu().fault();
  run.metrics.instructions = machine.cpu().instructions_retired();
  run.metrics.world_switches = machine.monitor().world_switches();
  run.metrics.exec_cycles = machine.cpu().cycles();

  {
    auto span = aobs.phase("sign_final");
    const instr::TracesLog window = engine.window();
    TracesChunkPayload payload{window.direction_bits, window.indirect_targets,
                               window.loop_conditions};
    auto final = make_report(chal, h_mem, sequence, true,
                             PayloadType::TracesChunk,
                             encode_traces_chunk(payload));
    span.attr("bytes", final.payload.size());
    run.metrics.final_report_cycles =
        report_cost(machine, final.payload.size());
    run.reports.push_back(std::move(final));
  }

  run.metrics.cflog_bytes = engine.total_log_bytes();
  for (const auto& report : run.reports) {
    run.metrics.transmitted_evidence_bytes += report.payload.size();
  }
  aobs.finish("traces", run.metrics, run.reports, /*loop_hits=*/0);
  return run;
}

// ---------------------------------------------------------------------------
// Uninstrumented baseline
// ---------------------------------------------------------------------------

RunMetrics BaselineRunner::run(sim::Machine& machine,
                               u64 max_instructions) const {
  RunMetrics metrics;
  AttestObs aobs("baseline", machine);
  machine.load_program(*program_);
  metrics.code_bytes = program_->size();
  // No CFA session locks memory here, but predecode stays safe: the write
  // watch drops any line the app (or an injector) overwrites.
  machine.predecode(program_->base(), program_->size());
  machine.reset_cpu(entry_);
  {
    auto span = aobs.phase("app_run");
    metrics.halt = machine.run(max_instructions);
  }
  metrics.fault = machine.cpu().fault();
  metrics.exec_cycles = machine.cpu().cycles();
  metrics.instructions = machine.cpu().instructions_retired();
  aobs.finish("baseline", metrics, {}, /*loop_hits=*/0);
  return metrics;
}

}  // namespace raptrack::cfa
