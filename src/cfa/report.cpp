#include "cfa/report.hpp"

namespace raptrack::cfa {

namespace {

void put_u32(std::vector<u8>& out, u32 value) {
  out.push_back(static_cast<u8>(value));
  out.push_back(static_cast<u8>(value >> 8));
  out.push_back(static_cast<u8>(value >> 16));
  out.push_back(static_cast<u8>(value >> 24));
}

class Reader {
 public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  u32 u32_value() {
    if (pos_ + 4 > data_.size()) throw Error("report payload truncated");
    const u32 v = static_cast<u32>(data_[pos_]) |
                  (static_cast<u32>(data_[pos_ + 1]) << 8) |
                  (static_cast<u32>(data_[pos_ + 2]) << 16) |
                  (static_cast<u32>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const u8> data_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<u8> SignedReport::mac_input() const {
  std::vector<u8> out;
  out.reserve(chal.size() + h_mem.size() + 16 + payload.size());
  out.insert(out.end(), chal.begin(), chal.end());
  out.insert(out.end(), h_mem.begin(), h_mem.end());
  put_u32(out, sequence);
  out.push_back(final_report ? 1 : 0);
  out.push_back(static_cast<u8>(type));
  put_u32(out, static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void SignedReport::sign(std::span<const u8> key) {
  mac = crypto::hmac_sha256(key, mac_input());
}

bool SignedReport::verify(std::span<const u8> key) const {
  return crypto::digest_equal(mac, crypto::hmac_sha256(key, mac_input()));
}

std::vector<u8> encode_packets(const trace::PacketLog& packets) {
  std::vector<u8> out;
  put_u32(out, static_cast<u32>(packets.size()));
  for (const auto& packet : packets) {
    put_u32(out, packet.source_word());
    put_u32(out, packet.destination_word());
  }
  return out;
}

trace::PacketLog decode_packets(std::span<const u8> payload) {
  Reader reader(payload);
  const u32 count = reader.u32_value();
  trace::PacketLog packets;
  packets.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const u32 src = reader.u32_value();
    const u32 dst = reader.u32_value();
    packets.push_back(trace::BranchPacket::from_words(src, dst));
  }
  if (!reader.done()) throw Error("packet payload has trailing bytes");
  return packets;
}

std::vector<u8> encode_rap_final(const RapFinalPayload& payload) {
  std::vector<u8> out = encode_packets(payload.packets);
  put_u32(out, static_cast<u32>(payload.loop_values.size()));
  for (const u32 value : payload.loop_values) put_u32(out, value);
  return out;
}

RapFinalPayload decode_rap_final(std::span<const u8> payload) {
  Reader reader(payload);
  RapFinalPayload result;
  const u32 packet_count = reader.u32_value();
  for (u32 i = 0; i < packet_count; ++i) {
    const u32 src = reader.u32_value();
    const u32 dst = reader.u32_value();
    result.packets.push_back(trace::BranchPacket::from_words(src, dst));
  }
  const u32 loop_count = reader.u32_value();
  for (u32 i = 0; i < loop_count; ++i) {
    result.loop_values.push_back(reader.u32_value());
  }
  if (!reader.done()) throw Error("rap-final payload has trailing bytes");
  return result;
}

std::vector<u8> encode_traces_chunk(const TracesChunkPayload& payload) {
  std::vector<u8> out;
  put_u32(out, static_cast<u32>(payload.direction_bits.size()));
  u32 word = 0;
  for (size_t i = 0; i < payload.direction_bits.size(); ++i) {
    if (payload.direction_bits[i]) word |= 1u << (i % 32);
    if (i % 32 == 31 || i + 1 == payload.direction_bits.size()) {
      put_u32(out, word);
      word = 0;
    }
  }
  put_u32(out, static_cast<u32>(payload.indirect_targets.size()));
  for (const Address target : payload.indirect_targets) put_u32(out, target);
  put_u32(out, static_cast<u32>(payload.loop_values.size()));
  for (const u32 value : payload.loop_values) put_u32(out, value);
  return out;
}

TracesChunkPayload decode_traces_chunk(std::span<const u8> payload) {
  Reader reader(payload);
  TracesChunkPayload result;
  const u32 bit_count = reader.u32_value();
  u32 word = 0;
  for (u32 i = 0; i < bit_count; ++i) {
    if (i % 32 == 0) word = reader.u32_value();
    result.direction_bits.push_back(((word >> (i % 32)) & 1u) != 0);
  }
  const u32 addr_count = reader.u32_value();
  for (u32 i = 0; i < addr_count; ++i) {
    result.indirect_targets.push_back(reader.u32_value());
  }
  const u32 loop_count = reader.u32_value();
  for (u32 i = 0; i < loop_count; ++i) {
    result.loop_values.push_back(reader.u32_value());
  }
  if (!reader.done()) throw Error("traces payload has trailing bytes");
  return result;
}

}  // namespace raptrack::cfa
