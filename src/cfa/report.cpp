#include "cfa/report.hpp"

#include "trace/mtb.hpp"

namespace raptrack::cfa {

namespace {

void put_u32(std::vector<u8>& out, u32 value) {
  out.push_back(static_cast<u8>(value));
  out.push_back(static_cast<u8>(value >> 8));
  out.push_back(static_cast<u8>(value >> 16));
  out.push_back(static_cast<u8>(value >> 24));
}

/// Non-throwing bounds-checked cursor over untrusted bytes. Every read
/// either succeeds or marks the reader failed; callers check `failed()`
/// (reads after a failure return zeros and stay failed).
class Reader {
 public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  u32 u32_value() {
    if (failed_ || data_.size() - pos_ < 4) {
      failed_ = true;
      return 0;
    }
    const u32 v = static_cast<u32>(data_[pos_]) |
                  (static_cast<u32>(data_[pos_ + 1]) << 8) |
                  (static_cast<u32>(data_[pos_ + 2]) << 16) |
                  (static_cast<u32>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  u8 u8_value() {
    if (failed_ || data_.size() - pos_ < 1) {
      failed_ = true;
      return 0;
    }
    return data_[pos_++];
  }

  bool bytes_into(std::span<u8> out) {
    if (failed_ || data_.size() - pos_ < out.size()) {
      failed_ = true;
      return false;
    }
    std::copy(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + out.size()),
              out.begin());
    pos_ += out.size();
    return true;
  }

  std::span<const u8> subspan(size_t count) {
    if (failed_ || data_.size() - pos_ < count) {
      failed_ = true;
      return {};
    }
    const auto result = data_.subspan(pos_, count);
    pos_ += count;
    return result;
  }

  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  bool failed() const { return failed_; }
  bool done() const { return !failed_ && pos_ == data_.size(); }

  size_t position() const { return pos_; }
  /// Re-view an already-consumed byte range (zero-copy report admission
  /// needs the contiguous signed region after parsing past it).
  std::span<const u8> window(size_t begin, size_t end) const {
    return data_.subspan(begin, end - begin);
  }

 private:
  std::span<const u8> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

template <typename T>
Decoded<T> fail(std::string why) {
  return Decoded<T>::failure(std::move(why));
}

}  // namespace

bool payload_type_valid(u8 value) {
  return value >= static_cast<u8>(PayloadType::RapPackets) &&
         value <= static_cast<u8>(PayloadType::RapSpecFinal);
}

std::vector<u8> SignedReport::mac_input() const {
  std::vector<u8> out;
  out.reserve(chal.size() + h_mem.size() + 16 + payload.size());
  out.insert(out.end(), chal.begin(), chal.end());
  out.insert(out.end(), h_mem.begin(), h_mem.end());
  put_u32(out, sequence);
  out.push_back(final_report ? 1 : 0);
  out.push_back(static_cast<u8>(type));
  put_u32(out, static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

/// Streamed equivalent of hmac(key, mac_input()): MACs the fixed header
/// fields then the payload in place, so signing a large packet payload does
/// not first copy it into a fresh buffer (this runs once per report on the
/// prover's fixed-cost path).
crypto::Digest compute_mac(const SignedReport& report,
                           std::span<const u8> key) {
  crypto::HmacSha256 mac(key);
  std::vector<u8> header;
  header.reserve(report.chal.size() + report.h_mem.size() + 10);
  header.insert(header.end(), report.chal.begin(), report.chal.end());
  header.insert(header.end(), report.h_mem.begin(), report.h_mem.end());
  put_u32(header, report.sequence);
  header.push_back(report.final_report ? 1 : 0);
  header.push_back(static_cast<u8>(report.type));
  put_u32(header, static_cast<u32>(report.payload.size()));
  mac.update(header);
  mac.update(report.payload);
  return mac.finalize();
}

}  // namespace

void SignedReport::sign(std::span<const u8> key) {
  mac = compute_mac(*this, key);
}

bool SignedReport::verify(std::span<const u8> key) const {
  return crypto::digest_equal(mac, compute_mac(*this, key));
}

std::vector<u8> encode_packets(const trace::PacketLog& packets) {
  std::vector<u8> out;
  out.reserve(4 + packets.size() * trace::BranchPacket::kBytes);
  put_u32(out, static_cast<u32>(packets.size()));
  for (const auto& packet : packets) {
    put_u32(out, packet.source_word());
    put_u32(out, packet.destination_word());
  }
  return out;
}

std::vector<u8> encode_packets(const trace::Mtb& mtb) {
  std::vector<u8> out;
  out.reserve(4 + mtb.log_bytes());
  put_u32(out, mtb.log_bytes() / trace::BranchPacket::kBytes);
  mtb.append_log_bytes(out);
  return out;
}

Decoded<trace::PacketLog> try_decode_packets(std::span<const u8> payload) {
  Reader reader(payload);
  const u32 count = reader.u32_value();
  if (reader.failed()) return fail<trace::PacketLog>("packet payload truncated");
  // Size the claim against the bytes actually present *before* allocating:
  // a forged count must not drive a multi-gigabyte reserve.
  if (static_cast<u64>(count) * trace::BranchPacket::kBytes !=
      reader.remaining()) {
    return fail<trace::PacketLog>("packet count does not match payload size");
  }
  trace::PacketLog packets;
  packets.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const u32 src = reader.u32_value();
    const u32 dst = reader.u32_value();
    packets.push_back(trace::BranchPacket::from_words(src, dst));
  }
  return Decoded<trace::PacketLog>::success(std::move(packets));
}

trace::PacketLog decode_packets(std::span<const u8> payload) {
  auto result = try_decode_packets(payload);
  if (!result.ok()) throw Error(result.error);
  return std::move(*result);
}

std::vector<u8> encode_rap_final(const RapFinalPayload& payload) {
  std::vector<u8> out = encode_packets(payload.packets);
  put_u32(out, static_cast<u32>(payload.loop_values.size()));
  for (const u32 value : payload.loop_values) put_u32(out, value);
  return out;
}

std::vector<u8> encode_rap_final(const trace::Mtb& mtb,
                                 const std::vector<u32>& loop_values) {
  std::vector<u8> out = encode_packets(mtb);
  out.reserve(out.size() + 4 + loop_values.size() * 4);
  put_u32(out, static_cast<u32>(loop_values.size()));
  for (const u32 value : loop_values) put_u32(out, value);
  return out;
}

Decoded<RapFinalPayload> try_decode_rap_final(std::span<const u8> payload) {
  Reader reader(payload);
  RapFinalPayload result;
  const u32 packet_count = reader.u32_value();
  if (reader.failed() ||
      static_cast<u64>(packet_count) * trace::BranchPacket::kBytes + 4 >
          reader.remaining()) {
    return fail<RapFinalPayload>("rap-final packet section truncated");
  }
  result.packets.reserve(packet_count);
  for (u32 i = 0; i < packet_count; ++i) {
    const u32 src = reader.u32_value();
    const u32 dst = reader.u32_value();
    result.packets.push_back(trace::BranchPacket::from_words(src, dst));
  }
  const u32 loop_count = reader.u32_value();
  if (reader.failed() ||
      static_cast<u64>(loop_count) * 4 != reader.remaining()) {
    return fail<RapFinalPayload>("rap-final loop section malformed");
  }
  result.loop_values.reserve(loop_count);
  for (u32 i = 0; i < loop_count; ++i) {
    result.loop_values.push_back(reader.u32_value());
  }
  return Decoded<RapFinalPayload>::success(std::move(result));
}

RapFinalPayload decode_rap_final(std::span<const u8> payload) {
  auto result = try_decode_rap_final(payload);
  if (!result.ok()) throw Error(result.error);
  return std::move(*result);
}

std::vector<u8> encode_traces_chunk(const TracesChunkPayload& payload) {
  std::vector<u8> out;
  put_u32(out, static_cast<u32>(payload.direction_bits.size()));
  u32 word = 0;
  for (size_t i = 0; i < payload.direction_bits.size(); ++i) {
    if (payload.direction_bits[i]) word |= 1u << (i % 32);
    if (i % 32 == 31 || i + 1 == payload.direction_bits.size()) {
      put_u32(out, word);
      word = 0;
    }
  }
  put_u32(out, static_cast<u32>(payload.indirect_targets.size()));
  for (const Address target : payload.indirect_targets) put_u32(out, target);
  put_u32(out, static_cast<u32>(payload.loop_values.size()));
  for (const u32 value : payload.loop_values) put_u32(out, value);
  return out;
}

Decoded<TracesChunkPayload> try_decode_traces_chunk(
    std::span<const u8> payload) {
  Reader reader(payload);
  TracesChunkPayload result;
  const u32 bit_count = reader.u32_value();
  const u64 bit_words = (static_cast<u64>(bit_count) + 31) / 32;
  if (reader.failed() || bit_words * 4 > reader.remaining()) {
    return fail<TracesChunkPayload>("traces bit section truncated");
  }
  result.direction_bits.reserve(bit_count);
  u32 word = 0;
  for (u32 i = 0; i < bit_count; ++i) {
    if (i % 32 == 0) word = reader.u32_value();
    result.direction_bits.push_back(((word >> (i % 32)) & 1u) != 0);
  }
  const u32 addr_count = reader.u32_value();
  if (reader.failed() ||
      static_cast<u64>(addr_count) * 4 + 4 > reader.remaining()) {
    return fail<TracesChunkPayload>("traces target section truncated");
  }
  result.indirect_targets.reserve(addr_count);
  for (u32 i = 0; i < addr_count; ++i) {
    result.indirect_targets.push_back(reader.u32_value());
  }
  const u32 loop_count = reader.u32_value();
  if (reader.failed() ||
      static_cast<u64>(loop_count) * 4 != reader.remaining()) {
    return fail<TracesChunkPayload>("traces loop section malformed");
  }
  result.loop_values.reserve(loop_count);
  for (u32 i = 0; i < loop_count; ++i) {
    result.loop_values.push_back(reader.u32_value());
  }
  return Decoded<TracesChunkPayload>::success(std::move(result));
}

TracesChunkPayload decode_traces_chunk(std::span<const u8> payload) {
  auto result = try_decode_traces_chunk(payload);
  if (!result.ok()) throw Error(result.error);
  return std::move(*result);
}

// -- report wire format ------------------------------------------------------

namespace {
constexpr u8 kReportMagic[4] = {'R', 'P', 'T', '1'};
constexpr u8 kChainMagic[4] = {'R', 'P', 'C', '1'};

void append_report(std::vector<u8>& out, const SignedReport& report) {
  out.insert(out.end(), std::begin(kReportMagic), std::end(kReportMagic));
  out.insert(out.end(), report.chal.begin(), report.chal.end());
  out.insert(out.end(), report.h_mem.begin(), report.h_mem.end());
  put_u32(out, report.sequence);
  out.push_back(report.final_report ? 1 : 0);
  out.push_back(static_cast<u8>(report.type));
  put_u32(out, static_cast<u32>(report.payload.size()));
  out.insert(out.end(), report.payload.begin(), report.payload.end());
  out.insert(out.end(), report.mac.begin(), report.mac.end());
}

/// Structural parse of one wire record into a view — the single place the
/// record format is validated; the copying decoder materializes from here.
Decoded<ReportView> read_report_view(Reader& reader) {
  u8 magic[4];
  if (!reader.bytes_into(magic) ||
      !std::equal(std::begin(magic), std::end(magic),
                  std::begin(kReportMagic))) {
    return fail<ReportView>("report framing: bad magic");
  }
  ReportView view;
  const size_t signed_begin = reader.position();
  reader.bytes_into(view.chal);
  view.h_mem = reader.subspan(32);
  view.sequence = reader.u32_value();
  const u8 final_byte = reader.u8_value();
  const u8 type_byte = reader.u8_value();
  const u32 payload_len = reader.u32_value();
  if (reader.failed()) return fail<ReportView>("report header truncated");
  if (final_byte > 1) return fail<ReportView>("report final flag malformed");
  if (!payload_type_valid(type_byte)) {
    return fail<ReportView>("report payload type unknown");
  }
  view.final_report = final_byte == 1;
  view.type = static_cast<PayloadType>(type_byte);
  if (static_cast<u64>(payload_len) + 32 > reader.remaining()) {
    return fail<ReportView>("report payload truncated");
  }
  view.payload = reader.subspan(payload_len);
  const size_t signed_end = reader.position();
  view.mac = reader.subspan(32);
  if (reader.failed()) return fail<ReportView>("report MAC truncated");
  view.mac_input = reader.window(signed_begin, signed_end);
  return Decoded<ReportView>::success(view);
}

Decoded<SignedReport> read_report(Reader& reader) {
  auto view = read_report_view(reader);
  if (!view.ok()) return fail<SignedReport>(std::move(view.error));
  return Decoded<SignedReport>::success(view->materialize());
}

}  // namespace

ReportView ReportView::of(const SignedReport& report) {
  ReportView view;
  view.chal = report.chal;
  view.h_mem = report.h_mem;
  view.sequence = report.sequence;
  view.final_report = report.final_report;
  view.type = report.type;
  view.payload = report.payload;
  view.mac = report.mac;
  return view;  // mac_input stays empty: fields are not contiguous here
}

bool ReportView::verify(const crypto::HmacKeySchedule& schedule) const {
  crypto::HmacSha256 h(schedule);
  if (!mac_input.empty()) {
    h.update(mac_input);
  } else {
    // Re-stream the header exactly as SignedReport::mac_input lays it out.
    std::vector<u8> header;
    header.reserve(chal.size() + h_mem.size() + 10);
    header.insert(header.end(), chal.begin(), chal.end());
    header.insert(header.end(), h_mem.begin(), h_mem.end());
    put_u32(header, sequence);
    header.push_back(final_report ? 1 : 0);
    header.push_back(static_cast<u8>(type));
    put_u32(header, static_cast<u32>(payload.size()));
    h.update(header);
    h.update(payload);
  }
  return crypto::digest_equal(h.finalize(), mac);
}

bool ReportView::same_bytes(const ReportView& other) const {
  return chal == other.chal && sequence == other.sequence &&
         final_report == other.final_report && type == other.type &&
         std::equal(h_mem.begin(), h_mem.end(), other.h_mem.begin(),
                    other.h_mem.end()) &&
         std::equal(payload.begin(), payload.end(), other.payload.begin(),
                    other.payload.end()) &&
         std::equal(mac.begin(), mac.end(), other.mac.begin(),
                    other.mac.end());
}

SignedReport ReportView::materialize() const {
  SignedReport report;
  report.chal = chal;
  std::copy(h_mem.begin(), h_mem.end(), report.h_mem.begin());
  report.sequence = sequence;
  report.final_report = final_report;
  report.type = type;
  report.payload.assign(payload.begin(), payload.end());
  std::copy(mac.begin(), mac.end(), report.mac.begin());
  return report;
}

std::vector<u8> encode_report(const SignedReport& report) {
  std::vector<u8> out;
  out.reserve(90 + report.payload.size());
  append_report(out, report);
  return out;
}

Decoded<SignedReport> try_decode_report(std::span<const u8> bytes) {
  Reader reader(bytes);
  auto report = read_report(reader);
  if (!report.ok()) return report;
  if (!reader.done()) return fail<SignedReport>("report has trailing bytes");
  return report;
}

std::vector<u8> encode_report_chain(std::span<const SignedReport> chain) {
  std::vector<u8> out;
  out.insert(out.end(), std::begin(kChainMagic), std::end(kChainMagic));
  put_u32(out, static_cast<u32>(chain.size()));
  for (const auto& report : chain) append_report(out, report);
  return out;
}

std::vector<u8> encode_report_chain(const std::vector<SignedReport>& chain) {
  return encode_report_chain(std::span<const SignedReport>(chain));
}

Decoded<std::vector<SignedReport>> try_decode_report_chain(
    std::span<const u8> bytes) {
  using Chain = std::vector<SignedReport>;
  Reader reader(bytes);
  u8 magic[4];
  if (!reader.bytes_into(magic) ||
      !std::equal(std::begin(magic), std::end(magic),
                  std::begin(kChainMagic))) {
    return fail<Chain>("chain framing: bad magic");
  }
  const u32 count = reader.u32_value();
  // Each report needs ≥ 94 bytes on the wire; reject forged counts early.
  if (reader.failed() || static_cast<u64>(count) * 94 > reader.remaining()) {
    return fail<Chain>("chain count does not fit the buffer");
  }
  Chain chain;
  chain.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    auto report = read_report(reader);
    if (!report.ok()) {
      return fail<Chain>("chain report " + std::to_string(i) + ": " +
                         report.error);
    }
    chain.push_back(std::move(*report));
  }
  if (!reader.done()) return fail<Chain>("chain has trailing bytes");
  return Decoded<Chain>::success(std::move(chain));
}

Decoded<std::vector<ReportView>> try_parse_chain_views(
    std::span<const u8> bytes) {
  using Views = std::vector<ReportView>;
  Reader reader(bytes);
  u8 magic[4];
  if (!reader.bytes_into(magic) ||
      !std::equal(std::begin(magic), std::end(magic),
                  std::begin(kChainMagic))) {
    return fail<Views>("chain framing: bad magic");
  }
  const u32 count = reader.u32_value();
  if (reader.failed() || static_cast<u64>(count) * 94 > reader.remaining()) {
    return fail<Views>("chain count does not fit the buffer");
  }
  Views views;
  views.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    auto view = read_report_view(reader);
    if (!view.ok()) {
      return fail<Views>("chain report " + std::to_string(i) + ": " +
                         view.error);
    }
    views.push_back(*view);
  }
  if (!reader.done()) return fail<Views>("chain has trailing bytes");
  return Decoded<Views>::success(std::move(views));
}

}  // namespace raptrack::cfa
