// The RAP-Track offline phase (§IV): partitions the post-compiled binary
// into MTBAR and MTBDR, installs the five trampoline shapes of Figs 3-7,
// and applies the loop optimization of §IV-D. The transformation is
// strictly in place for surviving code — every rewritten site keeps its
// address and the original instruction moves into an appended MTBAR slot
// (or MTBDR loop veneer), so no relocation of unrelated code is needed.
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "cfg/cfg.hpp"
#include "rewrite/manifest.hpp"

namespace raptrack::rewrite {

struct RewriteOptions {
  /// nop padding at the head of each MTBAR slot, covering the MTB's
  /// activation latency (§V-C). Must be >= the hardware latency or packets
  /// are silently lost — the verifier-side losslessness test catches this.
  u32 nop_pad = 2;
  /// Apply the §IV-D loop optimization (log the condition once instead of
  /// per-iteration packets).
  bool loop_optimization = true;
  /// Elide logging for simple loops with constant bounds (§IV-C,
  /// "statically deterministic"). Off forces per-iteration trampolines.
  bool deterministic_loop_elision = true;
  /// Known indirect-call targets beyond what the data scan finds.
  std::vector<Address> extra_cfg_roots;
};

struct RewriteResult {
  Program program;   ///< the rewritten, deployable image
  Manifest manifest;
  /// Statistics for the code-size figure (Fig 10).
  u32 original_bytes = 0;
  u32 rewritten_bytes = 0;
  u32 slot_count = 0;
  u32 veneer_count = 0;
};

/// Rewrite `original` (code in [code_begin, code_end), data after) for
/// RAP-Track. Throws Error on programs outside the supported shape (e.g.
/// explicit LR writes, SVCs in application code).
RewriteResult rewrite_for_rap_track(const Program& original, Address entry,
                                    Address code_begin, Address code_end,
                                    const RewriteOptions& options = {});

}  // namespace raptrack::rewrite
