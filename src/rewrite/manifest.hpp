// Rewrite manifest: the offline phase's output metadata. The Verifier holds
// this (it produced the deployed binary) and uses it to map MTB packets —
// whose sources are MTBAR slot addresses — back to the original program's
// control-flow decisions during lossless path reconstruction.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cfg/loop_analysis.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace raptrack::rewrite {

/// What a trampoline slot implements.
enum class SlotKind : u8 {
  IndirectCall,   ///< Fig 3: BL slot; slot ends with BX rm
  IndirectJump,   ///< Fig 4: B slot; slot ends with BX rm / LDR pc
  ReturnPop,      ///< Fig 4: B slot; slot ends with POP {…,pc}
  CondTaken,      ///< Figs 5/6: Bcc retargeted to slot; slot is B taken_target
  CondNotTaken,   ///< Fig 7: fall-through displaced; slot re-executes it and
                  ///< branches back — one packet per loop iteration
};

const char* slot_kind_name(SlotKind kind);

/// One MTBAR trampoline slot.
struct SlotRecord {
  SlotKind kind = SlotKind::IndirectCall;
  Address slot_base = 0;   ///< first word of the slot (nop padding)
  Address slot_end = 0;    ///< exclusive
  Address site = 0;        ///< original branch site (the Bcc for Cond* kinds)
  isa::Instruction original;  ///< the instruction that was rewritten/displaced
  /// CondTaken: the original taken target. CondNotTaken: the address the slot
  /// branches back to (site + 8).
  Address continuation = 0;
};

/// One loop-optimization veneer (§IV-D): the displaced preheader instruction
/// followed by an SVC that logs the loop-condition register, then a branch
/// to the loop header.
struct LoopVeneerRecord {
  Address veneer_base = 0;   ///< address of the displaced instruction
  Address svc_addr = 0;
  Address site = 0;          ///< original preheader instruction address
  isa::Instruction displaced;
  cfg::SimpleLoop loop;
};

struct Manifest {
  Address code_begin = 0;
  Address code_end = 0;     ///< original code range (now the bulk of MTBDR)
  Address image_end = 0;    ///< end of the rewritten image
  Address mtbar_base = 0;   ///< MTBAR = [mtbar_base, mtbar_limit] inclusive
  Address mtbar_limit = 0;
  Address mtbdr_base = 0;   ///< MTBDR = [mtbdr_base, mtbdr_limit] inclusive
  Address mtbdr_limit = 0;
  u32 nop_pad = 0;          ///< nops per slot (MTB activation latency cover)

  std::vector<SlotRecord> slots;
  std::vector<LoopVeneerRecord> loop_veneers;
  /// Deterministic simple loops (no logging; Verifier resolves by constant
  /// propagation). Keyed by controlling-branch address.
  std::map<Address, cfg::SimpleLoop> deterministic_loops;

  /// Slot containing `addr` (packet sources point into slots).
  const SlotRecord* slot_containing(Address addr) const;
  /// Slot for original site `site` (at most one per site).
  const SlotRecord* slot_for_site(Address site) const;
  /// Veneer whose SVC instruction is at `svc_addr`.
  const LoopVeneerRecord* veneer_at_svc(Address svc_addr) const;
  /// Veneer installed at original site `site`.
  const LoopVeneerRecord* veneer_for_site(Address site) const;
};

}  // namespace raptrack::rewrite
