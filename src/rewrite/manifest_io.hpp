// Manifest (de)serialization: the offline phase runs once at deployment
// time and its outputs — the rewritten image and this manifest — are what
// the Verifier stores for every provisioned device. The byte format is
// little-endian, versioned, and self-checking (magic + length framing), so
// a manifest written by one toolchain build verifies reports from another.
#pragma once

#include <span>
#include <vector>

#include "rewrite/manifest.hpp"

namespace raptrack::rewrite {

/// Serialize a manifest to its canonical byte form.
std::vector<u8> serialize_manifest(const Manifest& manifest);

/// Parse a serialized manifest. Throws Error on framing/version problems
/// or trailing bytes.
Manifest deserialize_manifest(std::span<const u8> bytes);

}  // namespace raptrack::rewrite
