#include "rewrite/manifest.hpp"

namespace raptrack::rewrite {

const char* slot_kind_name(SlotKind kind) {
  switch (kind) {
    case SlotKind::IndirectCall: return "indirect-call";
    case SlotKind::IndirectJump: return "indirect-jump";
    case SlotKind::ReturnPop: return "return-pop";
    case SlotKind::CondTaken: return "cond-taken";
    case SlotKind::CondNotTaken: return "cond-not-taken";
  }
  return "?";
}

const SlotRecord* Manifest::slot_containing(Address addr) const {
  for (const auto& slot : slots) {
    if (addr >= slot.slot_base && addr < slot.slot_end) return &slot;
  }
  return nullptr;
}

const SlotRecord* Manifest::slot_for_site(Address site) const {
  for (const auto& slot : slots) {
    if (slot.site == site) return &slot;
  }
  return nullptr;
}

const LoopVeneerRecord* Manifest::veneer_at_svc(Address svc_addr) const {
  for (const auto& veneer : loop_veneers) {
    if (veneer.svc_addr == svc_addr) return &veneer;
  }
  return nullptr;
}

const LoopVeneerRecord* Manifest::veneer_for_site(Address site) const {
  for (const auto& veneer : loop_veneers) {
    if (veneer.site == site) return &veneer;
  }
  return nullptr;
}

}  // namespace raptrack::rewrite
