#include "rewrite/manifest_io.hpp"

namespace raptrack::rewrite {

namespace {

constexpr u32 kMagic = 0x5250'414d;  // "RPAM"
constexpr u32 kVersion = 1;

class Writer {
 public:
  void u8_value(u8 v) { out_.push_back(v); }
  void u32_value(u32 v) {
    out_.push_back(static_cast<u8>(v));
    out_.push_back(static_cast<u8>(v >> 8));
    out_.push_back(static_cast<u8>(v >> 16));
    out_.push_back(static_cast<u8>(v >> 24));
  }
  void i32_value(i32 v) { u32_value(static_cast<u32>(v)); }
  void instruction(const isa::Instruction& in) { u32_value(isa::encode(in)); }

  std::vector<u8> take() { return std::move(out_); }

 private:
  std::vector<u8> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  u8 u8_value() {
    if (pos_ + 1 > data_.size()) throw Error("manifest truncated");
    return data_[pos_++];
  }
  u32 u32_value() {
    if (pos_ + 4 > data_.size()) throw Error("manifest truncated");
    const u32 v = static_cast<u32>(data_[pos_]) |
                  (static_cast<u32>(data_[pos_ + 1]) << 8) |
                  (static_cast<u32>(data_[pos_ + 2]) << 16) |
                  (static_cast<u32>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }
  i32 i32_value() { return static_cast<i32>(u32_value()); }
  isa::Instruction instruction() {
    const auto decoded = isa::decode(u32_value());
    if (!decoded) throw Error("manifest contains an undecodable instruction");
    return *decoded;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const u8> data_;
  size_t pos_ = 0;
};

void write_simple_loop(Writer& w, const cfg::SimpleLoop& loop) {
  w.u32_value(loop.header);
  w.u32_value(loop.bcc_site);
  w.u8_value(loop.forward_exit ? 1 : 0);
  w.u8_value(isa::index(loop.iterator));
  w.i32_value(loop.step);
  w.i32_value(loop.bound);
  w.u8_value(static_cast<u8>(loop.cond));
  w.u32_value(loop.preheader_instr);
  w.u8_value(loop.constant_init ? 1 : 0);
  w.i32_value(loop.constant_init.value_or(0));
}

cfg::SimpleLoop read_simple_loop(Reader& r) {
  cfg::SimpleLoop loop;
  loop.header = r.u32_value();
  loop.bcc_site = r.u32_value();
  loop.forward_exit = r.u8_value() != 0;
  loop.iterator = isa::reg_from_index(r.u8_value());
  loop.step = r.i32_value();
  loop.bound = r.i32_value();
  loop.cond = static_cast<isa::Cond>(r.u8_value());
  loop.preheader_instr = r.u32_value();
  const bool has_init = r.u8_value() != 0;
  const i32 init = r.i32_value();
  if (has_init) loop.constant_init = init;
  return loop;
}

}  // namespace

std::vector<u8> serialize_manifest(const Manifest& m) {
  Writer w;
  w.u32_value(kMagic);
  w.u32_value(kVersion);
  w.u32_value(m.code_begin);
  w.u32_value(m.code_end);
  w.u32_value(m.image_end);
  w.u32_value(m.mtbar_base);
  w.u32_value(m.mtbar_limit);
  w.u32_value(m.mtbdr_base);
  w.u32_value(m.mtbdr_limit);
  w.u32_value(m.nop_pad);

  w.u32_value(static_cast<u32>(m.slots.size()));
  for (const auto& slot : m.slots) {
    w.u8_value(static_cast<u8>(slot.kind));
    w.u32_value(slot.slot_base);
    w.u32_value(slot.slot_end);
    w.u32_value(slot.site);
    w.instruction(slot.original);
    w.u32_value(slot.continuation);
  }

  w.u32_value(static_cast<u32>(m.loop_veneers.size()));
  for (const auto& veneer : m.loop_veneers) {
    w.u32_value(veneer.veneer_base);
    w.u32_value(veneer.svc_addr);
    w.u32_value(veneer.site);
    w.instruction(veneer.displaced);
    write_simple_loop(w, veneer.loop);
  }

  w.u32_value(static_cast<u32>(m.deterministic_loops.size()));
  for (const auto& [site, loop] : m.deterministic_loops) {
    w.u32_value(site);
    write_simple_loop(w, loop);
  }
  return w.take();
}

Manifest deserialize_manifest(std::span<const u8> bytes) {
  Reader r(bytes);
  if (r.u32_value() != kMagic) throw Error("manifest: bad magic");
  if (r.u32_value() != kVersion) throw Error("manifest: unsupported version");
  Manifest m;
  m.code_begin = r.u32_value();
  m.code_end = r.u32_value();
  m.image_end = r.u32_value();
  m.mtbar_base = r.u32_value();
  m.mtbar_limit = r.u32_value();
  m.mtbdr_base = r.u32_value();
  m.mtbdr_limit = r.u32_value();
  m.nop_pad = r.u32_value();

  const u32 slot_count = r.u32_value();
  for (u32 i = 0; i < slot_count; ++i) {
    SlotRecord slot;
    slot.kind = static_cast<SlotKind>(r.u8_value());
    slot.slot_base = r.u32_value();
    slot.slot_end = r.u32_value();
    slot.site = r.u32_value();
    slot.original = r.instruction();
    slot.continuation = r.u32_value();
    m.slots.push_back(slot);
  }

  const u32 veneer_count = r.u32_value();
  for (u32 i = 0; i < veneer_count; ++i) {
    LoopVeneerRecord veneer;
    veneer.veneer_base = r.u32_value();
    veneer.svc_addr = r.u32_value();
    veneer.site = r.u32_value();
    veneer.displaced = r.instruction();
    veneer.loop = read_simple_loop(r);
    m.loop_veneers.push_back(veneer);
  }

  const u32 det_count = r.u32_value();
  for (u32 i = 0; i < det_count; ++i) {
    const Address site = r.u32_value();
    m.deterministic_loops[site] = read_simple_loop(r);
  }
  if (!r.done()) throw Error("manifest: trailing bytes");
  return m;
}

}  // namespace raptrack::rewrite
