#include "rewrite/rap_rewriter.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/bits.hpp"
#include "common/hex.hpp"
#include "tz/secure_monitor.hpp"

namespace raptrack::rewrite {

using cfg::BccRole;
using isa::BranchKind;
using isa::Instruction;
using isa::Op;
using isa::Reg;

namespace {

/// Reject program shapes the offline phase cannot handle soundly.
void validate_program(const Program& program, Address code_begin,
                      Address code_end) {
  for (Address addr = code_begin; addr < code_end; addr += 4) {
    const auto instr = program.instruction_at(addr);
    if (!instr) continue;  // inline data: never executed by convention
    if (instr->op == Op::SVC) {
      throw Error("rewrite: application code may not contain SVC (" +
                  hex32(addr) + ")");
    }
    // Explicit LR writes would break the "BX LR is deterministic" insight
    // of §IV-C.2 (the paper's compiler convention guarantees this; our
    // assembler-level applications follow it and the rewriter enforces it).
    const bool writes_lr =
        ((isa::format_of(instr->op) == isa::Format::Mov16 ||
          isa::format_of(instr->op) == isa::Format::AluReg ||
          isa::format_of(instr->op) == isa::Format::AluImm) &&
         !isa::is_compare(instr->op) && instr->rd == Reg::LR) ||
        (isa::is_load(instr->op) && instr->rd == Reg::LR);
    if (writes_lr) {
      throw Error("rewrite: explicit LR write at " + hex32(addr) +
                  " violates the return-determinism convention");
    }
  }
}

/// A displaced instruction must be re-executable at a different address.
/// PC-relative instructions (direct branches) need retargeting; anything
/// else is position-independent in RT-ISA.
bool displaceable_verbatim(const Instruction& instr) {
  switch (isa::branch_kind(instr)) {
    case BranchKind::None:
      return instr.op != Op::SVC;
    default:
      return false;
  }
}

class Rewriter {
 public:
  Rewriter(const Program& original, Address entry, Address code_begin,
           Address code_end, const RewriteOptions& options)
      : result_{.program = original},
        entry_(entry),
        code_begin_(code_begin),
        code_end_(code_end),
        options_(options) {}

  RewriteResult run() {
    validate_program(result_.program, code_begin_, code_end_);
    result_.original_bytes = result_.program.size();

    const cfg::Cfg graph(result_.program, entry_, code_begin_, code_end_,
                         options_.extra_cfg_roots);
    cfg::LoopAnalysis loops = cfg::analyze_loops(graph);
    if (!options_.deterministic_loop_elision || !options_.loop_optimization) {
      // Ablation modes: demote optimized roles back to per-iteration logging.
      for (auto& [site, role] : loops.bcc_roles) {
        const bool demote_det =
            !options_.deterministic_loop_elision && role == BccRole::Deterministic;
        const bool demote_opt =
            !options_.loop_optimization && role == BccRole::LoopCondition;
        if (demote_det || demote_opt) {
          const auto& simple = loops.simple_loops.at(site);
          role = simple.forward_exit ? BccRole::LogNotTaken : BccRole::LogTaken;
        }
      }
    }

    graph_ = &graph;
    build_unlogged_graph(graph, loops);
    plan_sites(loops);
    emit_veneers();
    emit_slots();
    patch_sites();
    finalize_manifest(loops);
    return std::move(result_);
  }

 private:
  struct PlannedSlot {
    SlotKind kind;
    Address site;
    Instruction original;
    Address continuation = 0;  // CondTaken: taken target; CondNotTaken: resume
  };
  struct PlannedVeneer {
    Address site;  // preheader instruction address
    Instruction displaced;
    cfg::SimpleLoop loop;
  };

  // -- silent-rejoin analysis ------------------------------------------------
  //
  // Taken-edge-only logging (Fig 5) leaves the Verifier unable to attribute
  // a slot packet to a dynamic instance when the *unlogged* direction can
  // re-reach the site without crossing any logged branch (e.g. a recursive
  // call guarded by a base-case conditional: the not-taken path re-enters
  // the function through an unlogged direct call). Where exactly one
  // direction has that property, we log the other direction instead — the
  // local parse becomes decidable while staying lossless. Where both (or
  // neither) do, the paper's default (log taken) is kept; the Verifier's
  // backtracking parser covers the residual ambiguity.

  /// Blocks reachable from `begin` via edges that produce no CF_Log packet:
  /// fall-throughs, direct branches/calls, unlogged conditional directions,
  /// and unmonitored BX LR returns (over-approximated as edges to every
  /// call-return site).
  void build_unlogged_graph(const cfg::Cfg& graph,
                            const cfg::LoopAnalysis& loops) {
    std::vector<Address> return_sites;
    for (const auto& [begin, block] : graph.blocks()) {
      if (block.terminator == BranchKind::DirectCall &&
          block.end < code_end_) {
        return_sites.push_back(graph.block_containing(block.end).begin);
      }
    }
    for (const auto& [begin, block] : graph.blocks()) {
      auto& out = unlogged_edges_[begin];
      const auto add_block_of = [&](Address addr) {
        if (addr >= code_begin_ && addr < code_end_) {
          out.push_back(graph.block_containing(addr).begin);
        }
      };
      const Address last = block.last_instr();
      const auto instr = result_.program.instruction_at(last);
      switch (block.terminator) {
        case BranchKind::None:
          add_block_of(block.end);
          break;
        case BranchKind::Direct:
          add_block_of(isa::branch_target(*instr, last));
          break;
        case BranchKind::DirectCall:
          add_block_of(isa::branch_target(*instr, last));  // into the callee
          break;
        case BranchKind::Conditional: {
          const auto role = loops.bcc_roles.find(last);
          const Address taken = isa::branch_target(*instr, last);
          const bool taken_logged =
              role != loops.bcc_roles.end() && role->second == cfg::BccRole::LogTaken;
          const bool fallthrough_logged =
              role != loops.bcc_roles.end() &&
              role->second == cfg::BccRole::LogNotTaken;
          if (!taken_logged) add_block_of(taken);
          if (!fallthrough_logged) add_block_of(block.end);
          break;
        }
        case BranchKind::Return:
          if (instr->op == Op::BX) {  // unmonitored leaf return
            for (const Address site : return_sites) out.push_back(site);
          }
          break;
        default:
          break;  // indirect jumps/calls and POP returns are logged
      }
    }
  }

  /// Can `from` re-reach the block holding `site` through unlogged edges?
  bool silently_reaches(Address from, Address site_block) const {
    std::vector<Address> worklist{from};
    std::set<Address> seen;
    while (!worklist.empty()) {
      const Address block = worklist.back();
      worklist.pop_back();
      if (!seen.insert(block).second) continue;
      if (block == site_block) return true;
      const auto it = unlogged_edges_.find(block);
      if (it == unlogged_edges_.end()) continue;
      for (const Address next : it->second) worklist.push_back(next);
    }
    return false;
  }

  void plan_sites(const cfg::LoopAnalysis& loops) {
    const Program& program = result_.program;
    for (Address addr = code_begin_; addr < code_end_; addr += 4) {
      const auto decoded = program.instruction_at(addr);
      if (!decoded) continue;
      const Instruction instr = *decoded;
      switch (isa::branch_kind(instr)) {
        case BranchKind::IndirectCall:
          planned_slots_.push_back({SlotKind::IndirectCall, addr, instr, 0});
          break;
        case BranchKind::IndirectJump:
          planned_slots_.push_back({SlotKind::IndirectJump, addr, instr, 0});
          break;
        case BranchKind::Return:
          // BX LR stays unmonitored (§IV-C.2); POP {…,pc} is monitored.
          if (instr.op == Op::POP) {
            planned_slots_.push_back({SlotKind::ReturnPop, addr, instr, 0});
          }
          break;
        case BranchKind::Conditional:
          plan_conditional(addr, instr, loops);
          break;
        default:
          break;
      }
    }
  }

  void plan_conditional(Address site, const Instruction& bcc,
                        const cfg::LoopAnalysis& loops) {
    const BccRole role = loops.bcc_roles.at(site);
    switch (role) {
      case BccRole::Deterministic:
        return;  // §IV-C: statically reconstructible, no logging
      case BccRole::LoopCondition: {
        const auto& simple = loops.simple_loops.at(site);
        const auto displaced =
            result_.program.instruction_at(simple.preheader_instr);
        if (displaced && displaceable_verbatim(*displaced)) {
          planned_veneers_.push_back({simple.preheader_instr, *displaced, simple});
          return;
        }
        // Preheader not displaceable: fall back to per-iteration logging.
        break;
      }
      case BccRole::LogTaken:
      case BccRole::LogNotTaken:
        break;
    }

    if (role == BccRole::LogNotTaken ||
        (role == BccRole::LoopCondition &&
         loops.simple_loops.at(site).forward_exit)) {
      // Fig 7: displace the first fall-through instruction.
      const Address fallthrough = site + 4;
      const auto displaced =
          fallthrough < code_end_ ? result_.program.instruction_at(fallthrough)
                                  : std::nullopt;
      if (displaced && displaceable_verbatim(*displaced)) {
        planned_slots_.push_back(
            {SlotKind::CondNotTaken, site, *displaced, site + 8});
        return;
      }
      // Fall-through not displaceable: log the taken edge instead (still
      // lossless; slightly different packet pattern).
    }
    // Figs 5/6 default: retarget the taken edge through a slot. For forward
    // if/else sites whose fall-through silently rejoins the site while the
    // taken path does not (see build_unlogged_graph), log the not-taken
    // edge instead so the Verifier's parse stays locally decidable.
    const Address taken_target = isa::branch_target(bcc, site);
    if (role == BccRole::LogTaken && taken_target > site &&
        site + 4 < code_end_) {
      const Address site_block = graph_->block_containing(site).begin;
      const bool fallthrough_rejoins = silently_reaches(
          graph_->block_containing(site + 4).begin, site_block);
      const bool taken_rejoins =
          taken_target >= code_begin_ && taken_target < code_end_ &&
          silently_reaches(graph_->block_containing(taken_target).begin,
                           site_block);
      if (fallthrough_rejoins && !taken_rejoins) {
        const auto displaced = result_.program.instruction_at(site + 4);
        if (displaced && displaceable_verbatim(*displaced)) {
          planned_slots_.push_back(
              {SlotKind::CondNotTaken, site, *displaced, site + 8});
          return;
        }
      }
    }
    planned_slots_.push_back({SlotKind::CondTaken, site, bcc, taken_target});
  }

  void emit_veneers() {
    Program& program = result_.program;
    for (const auto& planned : planned_veneers_) {
      // Veneer layout (MTBDR): displaced-instr; SVC log-loop; B header.
      const Address veneer_base = program.end();
      std::vector<u32> words;
      words.push_back(isa::encode(planned.displaced));
      const Address svc_addr = veneer_base + 4;
      words.push_back(isa::encode(isa::make_svc(
          static_cast<u8>(tz::Service::kRapLogLoopCondition))));
      const Address branch_addr = veneer_base + 8;
      words.push_back(isa::encode(isa::make_branch(
          Op::B, isa::branch_offset(branch_addr, planned.loop.header))));
      program.append_words(words);

      LoopVeneerRecord record;
      record.veneer_base = veneer_base;
      record.svc_addr = svc_addr;
      record.site = planned.site;
      record.displaced = planned.displaced;
      record.loop = planned.loop;
      result_.manifest.loop_veneers.push_back(record);
    }
    result_.veneer_count = static_cast<u32>(planned_veneers_.size());
  }

  void emit_slots() {
    Program& program = result_.program;
    // MTBAR starts after the veneer area, aligned for readability.
    while (program.end() % 16 != 0) {
      const u32 nop = isa::encode(isa::make_nop());
      program.append_words(std::span<const u32>(&nop, 1));
    }
    result_.manifest.mtbar_base = program.end();

    for (const auto& planned : planned_slots_) {
      const Address slot_base = program.end();
      std::vector<u32> words;
      for (u32 i = 0; i < options_.nop_pad; ++i) {
        words.push_back(isa::encode(isa::make_nop()));
      }
      const Address body = slot_base + 4 * options_.nop_pad;
      switch (planned.kind) {
        case SlotKind::IndirectCall:
          // BX rm completes the call (LR was set by the BL at the site).
          words.push_back(
              isa::encode(isa::make_reg_branch(Op::BX, planned.original.rm)));
          break;
        case SlotKind::IndirectJump:
        case SlotKind::ReturnPop:
          // Re-execute the original instruction (BX rm / LDR pc / POP {…,pc});
          // none of these are PC-relative, so verbatim relocation is sound.
          words.push_back(isa::encode(planned.original));
          break;
        case SlotKind::CondTaken:
          words.push_back(isa::encode(isa::make_branch(
              Op::B, isa::branch_offset(body, planned.continuation))));
          break;
        case SlotKind::CondNotTaken: {
          words.push_back(isa::encode(planned.original));  // displaced instr
          const Address back = body + 4;
          words.push_back(isa::encode(isa::make_branch(
              Op::B, isa::branch_offset(back, planned.continuation))));
          break;
        }
      }
      program.append_words(words);

      SlotRecord record;
      record.kind = planned.kind;
      record.slot_base = slot_base;
      record.slot_end = program.end();
      record.site = planned.site;
      record.original = planned.original;
      record.continuation = planned.continuation;
      result_.manifest.slots.push_back(record);
    }
    result_.slot_count = static_cast<u32>(planned_slots_.size());
  }

  void patch_sites() {
    Program& program = result_.program;
    // Each flash word may be rewritten at most once; overlapping plans
    // (e.g. a displaced fall-through that is also a loop preheader) would
    // corrupt the image.
    std::vector<Address> patched;
    const auto claim = [&](Address addr) {
      if (std::find(patched.begin(), patched.end(), addr) != patched.end()) {
        throw Error("rewrite: conflicting patches at " + hex32(addr));
      }
      patched.push_back(addr);
    };
    for (const auto& slot : result_.manifest.slots) {
      claim(slot.kind == SlotKind::CondNotTaken ? slot.site + 4 : slot.site);
    }
    for (const auto& veneer : result_.manifest.loop_veneers) claim(veneer.site);

    for (const auto& slot : result_.manifest.slots) {
      const Address body = slot.slot_base + 4 * options_.nop_pad;
      switch (slot.kind) {
        case SlotKind::IndirectCall:
          program.set_instruction(
              slot.site, isa::make_branch(Op::BL, isa::branch_offset(slot.site,
                                                                     slot.slot_base)));
          break;
        case SlotKind::IndirectJump:
        case SlotKind::ReturnPop:
          program.set_instruction(
              slot.site, isa::make_branch(Op::B, isa::branch_offset(slot.site,
                                                                    slot.slot_base)));
          break;
        case SlotKind::CondTaken: {
          // Keep the condition, retarget to the slot.
          Instruction patched = slot.original;
          patched.imm = isa::branch_offset(slot.site, slot.slot_base);
          program.set_instruction(slot.site, patched);
          break;
        }
        case SlotKind::CondNotTaken:
          // The Bcc stays; the fall-through instruction becomes B slot.
          program.set_instruction(
              slot.site + 4,
              isa::make_branch(Op::B, isa::branch_offset(slot.site + 4,
                                                         slot.slot_base)));
          break;
      }
      (void)body;
    }
    for (const auto& veneer : result_.manifest.loop_veneers) {
      program.set_instruction(
          veneer.site, isa::make_branch(Op::B, isa::branch_offset(
                                                   veneer.site, veneer.veneer_base)));
    }
  }

  void finalize_manifest(const cfg::LoopAnalysis& loops) {
    Manifest& manifest = result_.manifest;
    manifest.code_begin = code_begin_;
    manifest.code_end = code_end_;
    manifest.image_end = result_.program.end();
    manifest.nop_pad = options_.nop_pad;
    manifest.mtbdr_base = code_begin_;
    // MTBDR covers original code, data, and loop veneers — everything below
    // the MTBAR. Empty MTBAR (no slots) keeps a one-word range for DWT.
    if (manifest.mtbar_base == 0) manifest.mtbar_base = result_.program.end();
    manifest.mtbdr_limit = manifest.mtbar_base - 4;
    manifest.mtbar_limit =
        std::max(manifest.mtbar_base, result_.program.end() - 4);
    for (const auto& [site, simple] : loops.simple_loops) {
      if (loops.bcc_roles.at(site) == BccRole::Deterministic) {
        manifest.deterministic_loops[site] = simple;
      }
    }
    result_.rewritten_bytes = result_.program.size();
  }

  RewriteResult result_;
  const cfg::Cfg* graph_ = nullptr;
  std::map<Address, std::vector<Address>> unlogged_edges_;
  Address entry_;
  Address code_begin_;
  Address code_end_;
  RewriteOptions options_;
  std::vector<PlannedSlot> planned_slots_;
  std::vector<PlannedVeneer> planned_veneers_;
};

}  // namespace

RewriteResult rewrite_for_rap_track(const Program& original, Address entry,
                                    Address code_begin, Address code_end,
                                    const RewriteOptions& options) {
  return Rewriter(original, entry, code_begin, code_end, options).run();
}

}  // namespace raptrack::rewrite
