// Micro Trace Buffer (MTB) model, after the ARM MTB-M33 TRM features used by
// the paper (§II-B1): a circular buffer in dedicated SRAM that records the
// (source, destination) pair of every non-sequential PC change while tracing
// is active; TSTART/TSTOP inputs driven by DWT comparators; a MASTER.TSTARTEN
// mode that traces unconditionally; and a FLOW watermark that raises a debug
// event when the write position reaches a limit (used for partial reports).
//
// Tracing costs zero CPU cycles — the MTB runs in parallel with execution,
// which is the paper's core performance claim.
#pragma once

#include <functional>
#include <optional>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "mem/memory_map.hpp"
#include "trace/branch_packet.hpp"

namespace raptrack::trace {

class Mtb {
 public:
  /// `sram` is the memory map owning the MTB SRAM region; packets are stored
  /// there (Secure memory, so the Non-Secure world cannot tamper with
  /// CF_Log).
  Mtb(mem::MemoryMap& sram, Address buffer_base, u32 buffer_bytes);

  // -- register interface (Secure-World only in the device model) ----------

  /// MASTER.EN: master enable. When false nothing is recorded regardless of
  /// TSTART/TSTOP.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// MASTER.TSTARTEN: trace unconditionally from now on (the *naive* MTB
  /// configuration of Figure 1).
  void set_tstart_enable(bool always_on);

  /// FLOW.WATERMARK: byte offset at which a debug event fires (0 = off).
  /// Must be packet-aligned (multiple of 8).
  void set_watermark(u32 byte_offset);

  /// Debug-event callback (wired to the Secure-World partial-report handler).
  void set_watermark_handler(std::function<void()> handler);

  /// Activation latency in *instructions*: how long after a TSTART signal
  /// tracing actually begins. The paper adds nop padding in MTBAR
  /// trampolines "to allow the MTB sufficient time to activate" (§V-C);
  /// this knob models that hardware latency (default 1).
  void set_activation_latency(u32 instructions) { activation_latency_ = instructions; }
  u32 activation_latency() const { return activation_latency_; }

  /// POSITION register: current write offset in bytes. reset_position()
  /// reuses the same buffer after a partial report (§IV-E).
  u32 position() const {
    sync();
    return position_;
  }
  void reset_position();

  bool wrapped() const {
    sync();
    return wrapped_;
  }

  /// Total bytes ever written (across wraps/resets) — the CF_Log volume
  /// metric of Figures 1(a) and 9.
  u64 total_bytes_written() const {
    sync();
    return total_bytes_;
  }
  u64 packets_recorded() const {
    return total_bytes_written() / BranchPacket::kBytes;
  }

  // Observability: trace on/off toggles and watermark firings. Counted on
  // *transitions* only — tstart()/tstop() are signalled per retired
  // instruction while the pc sits inside an MTBAR/MTBDR window, so raw call
  // counts would be meaningless instruction tallies.
  u64 tstart_events() const { return tstart_events_; }
  u64 tstop_events() const { return tstop_events_; }
  u64 watermark_events() const { return watermark_events_; }

  // -- signals from the DWT / CPU -------------------------------------------

  // These four run on every retired instruction / taken branch, so they are
  // defined inline; only the packet-recording slow half stays out of line.

  /// TSTART input (DWT comparator matched inside MTBAR).
  void tstart() {
    if (started_ || always_on_) return;
    started_ = true;
    ++tstart_events_;
    pending_activation_ = activation_latency_;
    restart_pending_ = true;
  }
  /// TSTOP input (DWT comparator matched inside MTBDR).
  void tstop() {
    if (always_on_) return;  // TSTARTEN overrides the stop input
    if (started_) ++tstop_events_;
    started_ = false;
    pending_activation_ = 0;
  }

  /// Called once per retired instruction: advances the activation-latency
  /// countdown.
  void on_instruction_retired() {
    if (started_ && pending_activation_ > 0) --pending_activation_;
  }

  /// Batched form: equivalent to `n` on_instruction_retired() calls. The
  /// executor's superblock path retires a whole straight-line run at once;
  /// no TSTART/TSTOP can fire inside such a run (the DWT window is inert),
  /// so the activation countdown is the only per-instruction MTB state to
  /// advance and it commutes across the window.
  void on_instructions_retired(u32 n) {
    if (started_ && pending_activation_ > 0) {
      pending_activation_ -= pending_activation_ < n ? pending_activation_ : n;
    }
  }

  /// Non-sequential PC change. Records a packet iff tracing is live. Under
  /// an active DeferScope the packet is staged in a small local ring and
  /// flushed to SRAM lazily (see sync()); packets whose write would reach
  /// the watermark or wrap the buffer are still written eagerly so the
  /// watermark handler and wrap bookkeeping fire at exactly the same event
  /// as on the undeferred path.
  void on_branch(Address source, Address destination, isa::BranchKind kind) {
    (void)kind;
    if (!tracing()) return;
    BranchPacket packet{source, destination, restart_pending_};
    restart_pending_ = false;
    if (defer_) {
      if (pending_deferred_ == kDeferRing) flush_deferred();
      // position_ is frozen while packets are pending, so each staged
      // packet's end offset is exact. A packet that would land on the
      // watermark or past the buffer end takes the eager path below.
      const u32 end =
          position_ + (pending_deferred_ + 1) * BranchPacket::kBytes;
      if (end <= buffer_bytes_ && end != watermark_) {
        deferred_[pending_deferred_][0] = packet.source_word();
        deferred_[pending_deferred_][1] = packet.destination_word();
        ++pending_deferred_;
        return;
      }
      flush_deferred();
    }
    write_packet(packet);
  }

  /// Is tracing currently live (started, latency elapsed, enabled)?
  bool tracing() const {
    return enabled_ && started_ && pending_activation_ == 0;
  }

  // -- reading the log back (Secure World / tests) --------------------------

  /// Decode the packets currently in the buffer (up to `position`, or the
  /// whole buffer when wrapped).
  PacketLog read_log() const;

  /// Append the logged packets to `out` in oldest-first wire order (the
  /// byte layout write_packet stored: source_word then destination_word,
  /// little-endian). Equivalent to serializing read_log() packet by packet,
  /// but a straight copy of the buffer span — the report path uses this to
  /// build packet payloads without an intermediate PacketLog.
  void append_log_bytes(std::vector<u8>& out) const;

  /// Bytes append_log_bytes() would add (= packets-in-log * kBytes).
  u32 log_bytes() const {
    sync();
    return wrapped_ ? buffer_bytes_ : position_;
  }

  Address buffer_base() const { return buffer_base_; }
  u32 buffer_bytes() const { return buffer_bytes_; }

  // -- register-level interface (MTB-M33 TRM layout) -------------------------
  //
  // The Secure World can also program the MTB through its memory-mapped
  // registers, exactly as the paper's RoT does on real silicon:
  //   0x00 POSITION  [31:3] write pointer, bit 2 WRAP
  //   0x04 MASTER    bit 31 EN, bit 5 TSTARTEN
  //   0x08 FLOW      [31:3] WATERMARK
  //   0x0c BASE      buffer base address (read-only)
  static constexpr u32 kRegPosition = 0x00;
  static constexpr u32 kRegMaster = 0x04;
  static constexpr u32 kRegFlow = 0x08;
  static constexpr u32 kRegBase = 0x0c;

  u32 read_register(u32 offset) const;
  void write_register(u32 offset, u32 value);

  // -- fault injection (src/fault) -------------------------------------------

  /// XOR a stored packet word in the buffer SRAM with `mask` — models a
  /// single-event upset in MTB SRAM. `byte_offset` must be word-aligned and
  /// inside the buffer. Words at packet-even offsets are source words (bit 0
  /// is the A-bit, which the replayer does not interpret — see DESIGN.md's
  /// fault-model notes); odd offsets are destination words.
  void corrupt_stored_word(u32 byte_offset, u32 mask);

  /// Bytes of the buffer currently holding live (unread) packets.
  u32 live_bytes() const {
    sync();
    return wrapped_ ? buffer_bytes_ : position_;
  }

  // -- deferred emission (executor fast path) --------------------------------

  /// RAII scope enabling deferred packet emission. Created only by the
  /// executor around a fast-path run whose sole packet consumer is the
  /// fabric itself — code that drives on_branch() by hand and then reads
  /// the SRAM directly (tests, injectors) never sees deferral. While the
  /// scope is active, all externally observable MTB state (registers, log
  /// reads, byte counters, SRAM corruption) flushes pending packets first,
  /// so the stored wire bytes are indistinguishable from eager emission.
  class DeferScope {
   public:
    explicit DeferScope(Mtb& mtb) : mtb_(&mtb), prev_(mtb.defer_) {
      // Only buffers with directly addressable backing memory can defer:
      // flush_deferred() writes through buffer_mem_.
      mtb_->defer_ = mtb.buffer_mem_ != nullptr;
    }
    ~DeferScope() {
      mtb_->sync();
      mtb_->defer_ = prev_;
    }
    DeferScope(const DeferScope&) = delete;
    DeferScope& operator=(const DeferScope&) = delete;

   private:
    Mtb* mtb_;
    bool prev_;
  };

  /// Flush any deferred packets to SRAM. Const because deferral is a pure
  /// cache of not-yet-materialized writes: every const reader calls this
  /// first, so logical state never depends on flush timing.
  void sync() const {
    if (pending_deferred_ != 0) flush_deferred();
  }

 private:
  void write_packet(const BranchPacket& packet);
  void flush_deferred() const;

  mem::MemoryMap* sram_;
  Address buffer_base_;
  u32 buffer_bytes_;
  /// Direct pointer into the buffer region's backing store (resolved at
  /// construction; nullptr if the buffer is not plain backed memory).
  u8* buffer_mem_ = nullptr;
  bool enabled_ = false;
  bool always_on_ = false;
  bool started_ = false;        // TSTART latched, TSTOP clears
  u32 activation_latency_ = 1;
  u32 pending_activation_ = 0;  // instructions until tracing goes live
  bool restart_pending_ = true; // next packet carries the A-bit
  // position_/wrapped_/total_bytes_ are mutable because flush_deferred()
  // materializes staged packets from const readers (the lazy-write cache
  // idiom): deferral never changes what any reader observes, only when the
  // underlying byte stores happen.
  mutable u32 position_ = 0;
  mutable bool wrapped_ = false;
  u32 watermark_ = 0;
  std::function<void()> watermark_handler_;
  mutable u64 total_bytes_ = 0;
  bool defer_ = false;
  static constexpr u32 kDeferRing = 32;
  mutable u32 deferred_[kDeferRing][2]{};  // staged {source, destination} words
  mutable u32 pending_deferred_ = 0;
  u64 tstart_events_ = 0;
  u64 tstop_events_ = 0;
  u64 watermark_events_ = 0;
};

}  // namespace raptrack::trace
