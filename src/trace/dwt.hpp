// Data Watchpoint and Trace (DWT) unit model (§II-B2). Four comparators,
// each watching the PC. RAP-Track programs them in two pairs: comparators
// 0/1 bound MTBAR and drive MTB TSTART; comparators 2/3 bound MTBDR and
// drive MTB TSTOP. Matching is evaluated on every retired instruction and
// costs zero CPU cycles (hardware-parallel, like the MTB).
#pragma once

#include <array>
#include <functional>

#include "common/types.hpp"
#include "trace/mtb.hpp"

namespace raptrack::trace {

enum class ComparatorAction : u8 {
  Disabled,
  MtbTstartBase,   ///< lower bound of the TSTART range
  MtbTstartLimit,  ///< upper bound (inclusive) of the TSTART range
  MtbTstopBase,
  MtbTstopLimit,
  Watchpoint,      ///< general PC watchpoint (fires a callback)
};

struct Comparator {
  ComparatorAction action = ComparatorAction::Disabled;
  Address address = 0;
};

class Dwt {
 public:
  static constexpr unsigned kNumComparators = 4;

  explicit Dwt(Mtb& mtb) : mtb_(&mtb) {}

  void configure(unsigned index, const Comparator& comparator);
  const Comparator& comparator(unsigned index) const;
  void reset();

  /// Convenience: program the four comparators for RAP-Track (§IV-B):
  /// TSTART while PC in [mtbar_base, mtbar_limit], TSTOP while PC in
  /// [mtbdr_base, mtbdr_limit]. Limits are inclusive.
  void configure_rap_track(Address mtbar_base, Address mtbar_limit,
                           Address mtbdr_base, Address mtbdr_limit);

  /// General watchpoint callback (comparators with action Watchpoint).
  void set_watchpoint_handler(std::function<void(Address pc)> handler);

  /// Evaluate comparators for the instruction at `pc` and drive the MTB.
  void observe(Address pc);

  // -- register-level interface ----------------------------------------------
  //
  // Each comparator occupies a 16-byte bank, mirroring the DWT's
  // COMP/FUNCTION register pairs:
  //   0x10*i + 0x0  COMP      match address
  //   0x10*i + 0x8  FUNCTION  ComparatorAction in the low nibble
  static constexpr u32 kCompStride = 0x10;
  static constexpr u32 kRegComp = 0x0;
  static constexpr u32 kRegFunction = 0x8;

  u32 read_register(u32 offset) const;
  void write_register(u32 offset, u32 value);

 private:
  Mtb* mtb_;
  std::array<Comparator, kNumComparators> comparators_{};
  std::function<void(Address)> watchpoint_handler_;
};

}  // namespace raptrack::trace
