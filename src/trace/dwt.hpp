// Data Watchpoint and Trace (DWT) unit model (§II-B2). Four comparators,
// each watching the PC. RAP-Track programs them in two pairs: comparators
// 0/1 bound MTBAR and drive MTB TSTART; comparators 2/3 bound MTBDR and
// drive MTB TSTOP. Matching is evaluated on every retired instruction and
// costs zero CPU cycles (hardware-parallel, like the MTB).
#pragma once

#include <array>
#include <functional>

#include "common/types.hpp"
#include "trace/mtb.hpp"

namespace raptrack::trace {

enum class ComparatorAction : u8 {
  Disabled,
  MtbTstartBase,   ///< lower bound of the TSTART range
  MtbTstartLimit,  ///< upper bound (inclusive) of the TSTART range
  MtbTstopBase,
  MtbTstopLimit,
  Watchpoint,      ///< general PC watchpoint (fires a callback)
};

struct Comparator {
  ComparatorAction action = ComparatorAction::Disabled;
  Address address = 0;
};

class Dwt {
 public:
  static constexpr unsigned kNumComparators = 4;

  explicit Dwt(Mtb& mtb) : mtb_(&mtb) {}

  void configure(unsigned index, const Comparator& comparator);
  const Comparator& comparator(unsigned index) const;
  void reset();

  /// Convenience: program the four comparators for RAP-Track (§IV-B):
  /// TSTART while PC in [mtbar_base, mtbar_limit], TSTOP while PC in
  /// [mtbdr_base, mtbdr_limit]. Limits are inclusive.
  void configure_rap_track(Address mtbar_base, Address mtbar_limit,
                           Address mtbdr_base, Address mtbdr_limit);

  /// General watchpoint callback (comparators with action Watchpoint).
  void set_watchpoint_handler(std::function<void(Address pc)> handler);

  /// Evaluate comparators for the instruction at `pc` and drive the MTB.
  /// Runs on every retired instruction, so the comparator bank is resolved
  /// into `resolved_` once per reconfiguration, not per call.
  void observe(Address pc) {
    for (unsigned i = 0; i < resolved_.num_watchpoints; ++i) {
      if (pc == resolved_.watchpoints[i] && watchpoint_handler_) {
        watchpoint_handler_(pc);
      }
    }
    // TSTOP is evaluated first so that an address inside both ranges
    // (misconfiguration) conservatively stops tracing.
    if (resolved_.has_stop && pc >= resolved_.stop_base &&
        pc <= resolved_.stop_limit) {
      mtb_->tstop();
    }
    if (resolved_.has_start && pc >= resolved_.start_base &&
        pc <= resolved_.start_limit) {
      mtb_->tstart();
    }
  }

  /// True when no comparator can fire for any pc in [lo, hi): no watchpoint
  /// lands in the window and neither the TSTART nor the TSTOP range
  /// intersects it. The executor's superblock path uses this to retire a
  /// fused straight-line run without per-instruction observe() calls — a
  /// window that overlaps any comparator simply stays on the per-slot path,
  /// which evaluates every comparator exactly as before. Comparator
  /// addresses need not be word-aligned; the check is conservative.
  bool inert_window(Address lo, Address hi) const {
    const Address last = hi - 4;  // pcs in the window are lo, lo+4, .., last
    for (unsigned i = 0; i < resolved_.num_watchpoints; ++i) {
      const Address w = resolved_.watchpoints[i];
      if (w >= lo && w <= last) return false;
    }
    if (resolved_.has_stop && lo <= resolved_.stop_limit &&
        last >= resolved_.stop_base) {
      return false;
    }
    if (resolved_.has_start && lo <= resolved_.start_limit &&
        last >= resolved_.start_base) {
      return false;
    }
    return true;
  }

  // -- register-level interface ----------------------------------------------
  //
  // Each comparator occupies a 16-byte bank, mirroring the DWT's
  // COMP/FUNCTION register pairs:
  //   0x10*i + 0x0  COMP      match address
  //   0x10*i + 0x8  FUNCTION  ComparatorAction in the low nibble
  static constexpr u32 kCompStride = 0x10;
  static constexpr u32 kRegComp = 0x0;
  static constexpr u32 kRegFunction = 0x8;

  u32 read_register(u32 offset) const;
  void write_register(u32 offset, u32 value);

 private:
  /// The comparator bank resolved into the two ranges + watchpoint list.
  /// A range is live only when both of its bounds are programmed. Rebuilt by
  /// every configuring entry point (comparator order preserved: later
  /// comparators with the same action override earlier ones, and
  /// watchpoints fire in bank order before TSTOP/TSTART, exactly as the
  /// per-call resolution did).
  struct Resolved {
    Address start_base = 0, start_limit = 0;
    Address stop_base = 0, stop_limit = 0;
    bool has_start = false;
    bool has_stop = false;
    unsigned num_watchpoints = 0;
    std::array<Address, kNumComparators> watchpoints{};
  };

  void resolve();

  Mtb* mtb_;
  std::array<Comparator, kNumComparators> comparators_{};
  Resolved resolved_{};
  std::function<void(Address)> watchpoint_handler_;
};

}  // namespace raptrack::trace
