#include "trace/dwt.hpp"

namespace raptrack::trace {

void Dwt::configure(unsigned index, const Comparator& comparator) {
  if (index >= kNumComparators) throw Error("Dwt: comparator index out of range");
  comparators_[index] = comparator;
}

const Comparator& Dwt::comparator(unsigned index) const {
  if (index >= kNumComparators) throw Error("Dwt: comparator index out of range");
  return comparators_[index];
}

void Dwt::reset() { comparators_ = {}; }

void Dwt::configure_rap_track(Address mtbar_base, Address mtbar_limit,
                              Address mtbdr_base, Address mtbdr_limit) {
  if (mtbar_limit < mtbar_base || mtbdr_limit < mtbdr_base) {
    throw Error("Dwt: range limit below base");
  }
  configure(0, {ComparatorAction::MtbTstartBase, mtbar_base});
  configure(1, {ComparatorAction::MtbTstartLimit, mtbar_limit});
  configure(2, {ComparatorAction::MtbTstopBase, mtbdr_base});
  configure(3, {ComparatorAction::MtbTstopLimit, mtbdr_limit});
}

u32 Dwt::read_register(u32 offset) const {
  const unsigned index = offset / kCompStride;
  if (index >= kNumComparators) throw Error("Dwt: register offset out of range");
  switch (offset % kCompStride) {
    case kRegComp:
      return comparators_[index].address;
    case kRegFunction:
      return static_cast<u32>(comparators_[index].action);
    default:
      throw Error("Dwt: unknown register offset");
  }
}

void Dwt::write_register(u32 offset, u32 value) {
  const unsigned index = offset / kCompStride;
  if (index >= kNumComparators) throw Error("Dwt: register offset out of range");
  switch (offset % kCompStride) {
    case kRegComp:
      comparators_[index].address = value;
      break;
    case kRegFunction:
      if (value > static_cast<u32>(ComparatorAction::Watchpoint)) {
        throw Error("Dwt: invalid FUNCTION value");
      }
      comparators_[index].action = static_cast<ComparatorAction>(value);
      break;
    default:
      throw Error("Dwt: unknown register offset");
  }
}

void Dwt::set_watchpoint_handler(std::function<void(Address)> handler) {
  watchpoint_handler_ = std::move(handler);
}

void Dwt::observe(Address pc) {
  // Resolve the two ranges from the comparator bank. A range is live only
  // when both of its bounds are programmed.
  Address start_base = 0, start_limit = 0, stop_base = 0, stop_limit = 0;
  bool has_start_base = false, has_start_limit = false;
  bool has_stop_base = false, has_stop_limit = false;
  for (const auto& comp : comparators_) {
    switch (comp.action) {
      case ComparatorAction::MtbTstartBase:
        start_base = comp.address; has_start_base = true; break;
      case ComparatorAction::MtbTstartLimit:
        start_limit = comp.address; has_start_limit = true; break;
      case ComparatorAction::MtbTstopBase:
        stop_base = comp.address; has_stop_base = true; break;
      case ComparatorAction::MtbTstopLimit:
        stop_limit = comp.address; has_stop_limit = true; break;
      case ComparatorAction::Watchpoint:
        if (pc == comp.address && watchpoint_handler_) watchpoint_handler_(pc);
        break;
      case ComparatorAction::Disabled:
        break;
    }
  }
  // TSTOP is evaluated first so that an address inside both ranges
  // (misconfiguration) conservatively stops tracing.
  if (has_stop_base && has_stop_limit && pc >= stop_base && pc <= stop_limit) {
    mtb_->tstop();
  }
  if (has_start_base && has_start_limit && pc >= start_base && pc <= start_limit) {
    mtb_->tstart();
  }
}

}  // namespace raptrack::trace
