#include "trace/dwt.hpp"

namespace raptrack::trace {

void Dwt::configure(unsigned index, const Comparator& comparator) {
  if (index >= kNumComparators) throw Error("Dwt: comparator index out of range");
  comparators_[index] = comparator;
  resolve();
}

void Dwt::resolve() {
  Resolved r;
  for (const auto& comp : comparators_) {
    switch (comp.action) {
      case ComparatorAction::MtbTstartBase:
        r.start_base = comp.address; break;
      case ComparatorAction::MtbTstartLimit:
        r.start_limit = comp.address; break;
      case ComparatorAction::MtbTstopBase:
        r.stop_base = comp.address; break;
      case ComparatorAction::MtbTstopLimit:
        r.stop_limit = comp.address; break;
      case ComparatorAction::Watchpoint:
        r.watchpoints[r.num_watchpoints++] = comp.address; break;
      case ComparatorAction::Disabled:
        break;
    }
  }
  // A range is live only when both bounds were seen; track which bounds
  // appeared by re-scanning the actions (kNumComparators is tiny).
  bool sb = false, sl = false, tb = false, tl = false;
  for (const auto& comp : comparators_) {
    sb |= comp.action == ComparatorAction::MtbTstartBase;
    sl |= comp.action == ComparatorAction::MtbTstartLimit;
    tb |= comp.action == ComparatorAction::MtbTstopBase;
    tl |= comp.action == ComparatorAction::MtbTstopLimit;
  }
  r.has_start = sb && sl;
  r.has_stop = tb && tl;
  resolved_ = r;
}

const Comparator& Dwt::comparator(unsigned index) const {
  if (index >= kNumComparators) throw Error("Dwt: comparator index out of range");
  return comparators_[index];
}

void Dwt::reset() {
  comparators_ = {};
  resolve();
}

void Dwt::configure_rap_track(Address mtbar_base, Address mtbar_limit,
                              Address mtbdr_base, Address mtbdr_limit) {
  if (mtbar_limit < mtbar_base || mtbdr_limit < mtbdr_base) {
    throw Error("Dwt: range limit below base");
  }
  configure(0, {ComparatorAction::MtbTstartBase, mtbar_base});
  configure(1, {ComparatorAction::MtbTstartLimit, mtbar_limit});
  configure(2, {ComparatorAction::MtbTstopBase, mtbdr_base});
  configure(3, {ComparatorAction::MtbTstopLimit, mtbdr_limit});
}

u32 Dwt::read_register(u32 offset) const {
  const unsigned index = offset / kCompStride;
  if (index >= kNumComparators) throw Error("Dwt: register offset out of range");
  switch (offset % kCompStride) {
    case kRegComp:
      return comparators_[index].address;
    case kRegFunction:
      return static_cast<u32>(comparators_[index].action);
    default:
      throw Error("Dwt: unknown register offset");
  }
}

void Dwt::write_register(u32 offset, u32 value) {
  const unsigned index = offset / kCompStride;
  if (index >= kNumComparators) throw Error("Dwt: register offset out of range");
  switch (offset % kCompStride) {
    case kRegComp:
      comparators_[index].address = value;
      break;
    case kRegFunction:
      if (value > static_cast<u32>(ComparatorAction::Watchpoint)) {
        throw Error("Dwt: invalid FUNCTION value");
      }
      comparators_[index].action = static_cast<ComparatorAction>(value);
      break;
    default:
      throw Error("Dwt: unknown register offset");
  }
  resolve();
}

void Dwt::set_watchpoint_handler(std::function<void(Address)> handler) {
  watchpoint_handler_ = std::move(handler);
}

}  // namespace raptrack::trace
