// MTB trace packet format. The real MTB-M33 stores two words per branch:
// the source address (with the LSB carrying the A-bit, set when the trace
// restarted after a stop) and the destination address. CF_Log in RAP-Track
// is exactly this packet stream.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace raptrack::trace {

struct BranchPacket {
  Address source = 0;
  Address destination = 0;
  bool atomic_restart = false;  ///< A-bit: first packet after (re)activation

  /// Serialized size in bytes: two 32-bit words, as on the MTB-M33.
  static constexpr u32 kBytes = 8;

  u32 source_word() const { return (source & ~1u) | (atomic_restart ? 1u : 0u); }
  u32 destination_word() const { return destination; }

  static BranchPacket from_words(u32 src_word, u32 dst_word) {
    return {src_word & ~1u, dst_word, (src_word & 1u) != 0};
  }

  friend bool operator==(const BranchPacket&, const BranchPacket&) = default;
};

using PacketLog = std::vector<BranchPacket>;

}  // namespace raptrack::trace
