#include "trace/mtb.hpp"

namespace raptrack::trace {

Mtb::Mtb(mem::MemoryMap& sram, Address buffer_base, u32 buffer_bytes)
    : sram_(&sram), buffer_base_(buffer_base), buffer_bytes_(buffer_bytes) {
  if (buffer_bytes % BranchPacket::kBytes != 0 || buffer_bytes == 0) {
    throw Error("Mtb: buffer size must be a positive multiple of 8");
  }
  // Resolve the buffer's backing store once: region backings are allocated
  // at map construction and never resized, so the heap block outlives any
  // later region-list growth. Packet traffic (the hottest trace-side write)
  // then skips the per-word region lookup. Write watches never cover the
  // MTB SRAM (they guard predecoded APP code), so bypassing notify_write
  // here is sound; the raw fallback handles any exotic map.
  if (mem::Region* region = sram.find(buffer_base)) {
    if (!region->mmio && region->contains(buffer_base) &&
        buffer_base + buffer_bytes <= region->end()) {
      buffer_mem_ = region->backing.data() + (buffer_base - region->base);
    }
  }
}

void Mtb::set_enabled(bool enabled) {
  sync();
  enabled_ = enabled;
  if (!enabled) {
    started_ = false;
    pending_activation_ = 0;
    restart_pending_ = true;
  }
}

void Mtb::set_tstart_enable(bool always_on) {
  sync();
  always_on_ = always_on;
  if (always_on) {
    started_ = true;
    pending_activation_ = 0;
  }
}

void Mtb::set_watermark(u32 byte_offset) {
  sync();  // staged packets were admitted against the old watermark
  if (byte_offset % BranchPacket::kBytes != 0) {
    throw Error("Mtb: watermark must be packet-aligned");
  }
  if (byte_offset > buffer_bytes_) throw Error("Mtb: watermark beyond buffer");
  watermark_ = byte_offset;
}

void Mtb::set_watermark_handler(std::function<void()> handler) {
  watermark_handler_ = std::move(handler);
}

void Mtb::reset_position() {
  sync();
  position_ = 0;
  wrapped_ = false;
}

void Mtb::flush_deferred() const {
  // Straight-line materialization of the staged ring. Admission (on_branch)
  // guaranteed that no intermediate offset hits the watermark and that the
  // final offset is at most buffer_bytes_, so the only bookkeeping left is
  // the end-of-buffer wrap.
  u8* at = buffer_mem_ + position_;
  for (u32 i = 0; i < pending_deferred_; ++i, at += BranchPacket::kBytes) {
    const u32 src = deferred_[i][0];
    const u32 dst = deferred_[i][1];
    at[0] = static_cast<u8>(src);
    at[1] = static_cast<u8>(src >> 8);
    at[2] = static_cast<u8>(src >> 16);
    at[3] = static_cast<u8>(src >> 24);
    at[4] = static_cast<u8>(dst);
    at[5] = static_cast<u8>(dst >> 8);
    at[6] = static_cast<u8>(dst >> 16);
    at[7] = static_cast<u8>(dst >> 24);
  }
  const u32 bytes = pending_deferred_ * BranchPacket::kBytes;
  position_ += bytes;
  total_bytes_ += bytes;
  pending_deferred_ = 0;
  if (position_ >= buffer_bytes_) {
    position_ = 0;
    wrapped_ = true;
  }
}

void Mtb::write_packet(const BranchPacket& packet) {
  const u32 src = packet.source_word();
  const u32 dst = packet.destination_word();
  if (buffer_mem_ != nullptr) {
    u8* at = buffer_mem_ + position_;
    at[0] = static_cast<u8>(src);
    at[1] = static_cast<u8>(src >> 8);
    at[2] = static_cast<u8>(src >> 16);
    at[3] = static_cast<u8>(src >> 24);
    at[4] = static_cast<u8>(dst);
    at[5] = static_cast<u8>(dst >> 8);
    at[6] = static_cast<u8>(dst >> 16);
    at[7] = static_cast<u8>(dst >> 24);
  } else {
    sram_->raw_write32(buffer_base_ + position_, src);
    sram_->raw_write32(buffer_base_ + position_ + 4, dst);
  }
  position_ += BranchPacket::kBytes;
  total_bytes_ += BranchPacket::kBytes;
  if (watermark_ != 0 && position_ == watermark_ && watermark_handler_) {
    ++watermark_events_;
    watermark_handler_();  // handler typically calls reset_position()
  }
  if (position_ >= buffer_bytes_) {
    position_ = 0;
    wrapped_ = true;  // oldest packets now being overwritten
  }
}

u32 Mtb::read_register(u32 offset) const {
  sync();
  switch (offset) {
    case kRegPosition:
      return (position_ & ~7u) | (wrapped_ ? 0x4u : 0u);
    case kRegMaster:
      return (enabled_ ? 0x8000'0000u : 0u) | (always_on_ ? 0x20u : 0u);
    case kRegFlow:
      return watermark_ & ~7u;
    case kRegBase:
      return buffer_base_;
    default:
      throw Error("Mtb: unknown register offset");
  }
}

void Mtb::write_register(u32 offset, u32 value) {
  sync();
  switch (offset) {
    case kRegPosition:
      position_ = value & ~7u;
      if (position_ >= buffer_bytes_) position_ = 0;
      wrapped_ = (value & 0x4u) != 0;
      break;
    case kRegMaster:
      set_enabled((value & 0x8000'0000u) != 0);
      set_tstart_enable((value & 0x20u) != 0);
      break;
    case kRegFlow:
      set_watermark(value & ~7u);
      break;
    case kRegBase:
      throw Error("Mtb: BASE is read-only");
    default:
      throw Error("Mtb: unknown register offset");
  }
}

void Mtb::corrupt_stored_word(u32 byte_offset, u32 mask) {
  sync();  // the upset must hit whatever the eager path would have stored
  if (byte_offset % 4 != 0 || byte_offset + 4 > buffer_bytes_) {
    throw Error("Mtb: corrupt_stored_word offset out of range");
  }
  const Address at = buffer_base_ + byte_offset;
  sram_->raw_write32(at, sram_->raw_read32(at) ^ mask);
}

void Mtb::append_log_bytes(std::vector<u8>& out) const {
  const u32 valid_bytes = log_bytes();
  const u32 start = wrapped_ ? position_ : 0;
  out.reserve(out.size() + valid_bytes);
  if (buffer_mem_ != nullptr) {
    // The buffer already holds the wire layout; oldest-first is the span
    // from `start` to the end, then the wrapped prefix.
    out.insert(out.end(), buffer_mem_ + start, buffer_mem_ + valid_bytes);
    out.insert(out.end(), buffer_mem_, buffer_mem_ + (wrapped_ ? start : 0));
    return;
  }
  for (u32 offset = 0; offset < valid_bytes; ++offset) {
    out.push_back(sram_->raw_read8(buffer_base_ + (start + offset) % buffer_bytes_));
  }
}

PacketLog Mtb::read_log() const {
  sync();
  PacketLog log;
  const u32 valid_bytes = wrapped_ ? buffer_bytes_ : position_;
  log.reserve(valid_bytes / BranchPacket::kBytes);
  // When wrapped, the oldest packet starts at `position_`.
  const u32 start = wrapped_ ? position_ : 0;
  if (buffer_mem_ != nullptr) {
    // Bulk decode straight from the backing store (same little-endian
    // layout raw_read32 would assemble), one pass per contiguous span.
    const auto decode_span = [&](u32 from, u32 bytes) {
      const u8* at = buffer_mem_ + from;
      for (u32 off = 0; off < bytes; off += BranchPacket::kBytes, at += 8) {
        const u32 src = static_cast<u32>(at[0]) | static_cast<u32>(at[1]) << 8 |
                        static_cast<u32>(at[2]) << 16 |
                        static_cast<u32>(at[3]) << 24;
        const u32 dst = static_cast<u32>(at[4]) | static_cast<u32>(at[5]) << 8 |
                        static_cast<u32>(at[6]) << 16 |
                        static_cast<u32>(at[7]) << 24;
        log.push_back(BranchPacket::from_words(src, dst));
      }
    };
    decode_span(start, valid_bytes - start);
    decode_span(0, wrapped_ ? start : 0);
    return log;
  }
  for (u32 offset = 0; offset < valid_bytes; offset += BranchPacket::kBytes) {
    const u32 at = (start + offset) % buffer_bytes_;
    log.push_back(BranchPacket::from_words(sram_->raw_read32(buffer_base_ + at),
                                           sram_->raw_read32(buffer_base_ + at + 4)));
  }
  return log;
}

}  // namespace raptrack::trace
