#include "trace/mtb.hpp"

namespace raptrack::trace {

Mtb::Mtb(mem::MemoryMap& sram, Address buffer_base, u32 buffer_bytes)
    : sram_(&sram), buffer_base_(buffer_base), buffer_bytes_(buffer_bytes) {
  if (buffer_bytes % BranchPacket::kBytes != 0 || buffer_bytes == 0) {
    throw Error("Mtb: buffer size must be a positive multiple of 8");
  }
}

void Mtb::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (!enabled) {
    started_ = false;
    pending_activation_ = 0;
    restart_pending_ = true;
  }
}

void Mtb::set_tstart_enable(bool always_on) {
  always_on_ = always_on;
  if (always_on) {
    started_ = true;
    pending_activation_ = 0;
  }
}

void Mtb::set_watermark(u32 byte_offset) {
  if (byte_offset % BranchPacket::kBytes != 0) {
    throw Error("Mtb: watermark must be packet-aligned");
  }
  if (byte_offset > buffer_bytes_) throw Error("Mtb: watermark beyond buffer");
  watermark_ = byte_offset;
}

void Mtb::set_watermark_handler(std::function<void()> handler) {
  watermark_handler_ = std::move(handler);
}

void Mtb::reset_position() {
  position_ = 0;
  wrapped_ = false;
}

void Mtb::tstart() {
  if (started_ || always_on_) return;
  started_ = true;
  pending_activation_ = activation_latency_;
  restart_pending_ = true;
}

void Mtb::tstop() {
  if (always_on_) return;  // TSTARTEN overrides the stop input
  started_ = false;
  pending_activation_ = 0;
}

void Mtb::on_instruction_retired() {
  if (started_ && pending_activation_ > 0) --pending_activation_;
}

bool Mtb::tracing() const {
  return enabled_ && started_ && pending_activation_ == 0;
}

void Mtb::on_branch(Address source, Address destination, isa::BranchKind) {
  if (!tracing()) return;
  BranchPacket packet{source, destination, restart_pending_};
  restart_pending_ = false;
  write_packet(packet);
}

void Mtb::write_packet(const BranchPacket& packet) {
  sram_->raw_write32(buffer_base_ + position_, packet.source_word());
  sram_->raw_write32(buffer_base_ + position_ + 4, packet.destination_word());
  position_ += BranchPacket::kBytes;
  total_bytes_ += BranchPacket::kBytes;
  if (watermark_ != 0 && position_ == watermark_ && watermark_handler_) {
    watermark_handler_();  // handler typically calls reset_position()
  }
  if (position_ >= buffer_bytes_) {
    position_ = 0;
    wrapped_ = true;  // oldest packets now being overwritten
  }
}

u32 Mtb::read_register(u32 offset) const {
  switch (offset) {
    case kRegPosition:
      return (position_ & ~7u) | (wrapped_ ? 0x4u : 0u);
    case kRegMaster:
      return (enabled_ ? 0x8000'0000u : 0u) | (always_on_ ? 0x20u : 0u);
    case kRegFlow:
      return watermark_ & ~7u;
    case kRegBase:
      return buffer_base_;
    default:
      throw Error("Mtb: unknown register offset");
  }
}

void Mtb::write_register(u32 offset, u32 value) {
  switch (offset) {
    case kRegPosition:
      position_ = value & ~7u;
      if (position_ >= buffer_bytes_) position_ = 0;
      wrapped_ = (value & 0x4u) != 0;
      break;
    case kRegMaster:
      set_enabled((value & 0x8000'0000u) != 0);
      set_tstart_enable((value & 0x20u) != 0);
      break;
    case kRegFlow:
      set_watermark(value & ~7u);
      break;
    case kRegBase:
      throw Error("Mtb: BASE is read-only");
    default:
      throw Error("Mtb: unknown register offset");
  }
}

void Mtb::corrupt_stored_word(u32 byte_offset, u32 mask) {
  if (byte_offset % 4 != 0 || byte_offset + 4 > buffer_bytes_) {
    throw Error("Mtb: corrupt_stored_word offset out of range");
  }
  const Address at = buffer_base_ + byte_offset;
  sram_->raw_write32(at, sram_->raw_read32(at) ^ mask);
}

PacketLog Mtb::read_log() const {
  PacketLog log;
  const u32 valid_bytes = wrapped_ ? buffer_bytes_ : position_;
  // When wrapped, the oldest packet starts at `position_`.
  const u32 start = wrapped_ ? position_ : 0;
  for (u32 offset = 0; offset < valid_bytes; offset += BranchPacket::kBytes) {
    const u32 at = (start + offset) % buffer_bytes_;
    log.push_back(BranchPacket::from_words(sram_->raw_read32(buffer_base_ + at),
                                           sram_->raw_read32(buffer_base_ + at + 4)));
  }
  return log;
}

}  // namespace raptrack::trace
