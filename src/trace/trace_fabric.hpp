// Glue between the CPU's retired-instruction stream and the trace units:
// per instruction, the MTB activation-latency countdown ticks, then the DWT
// comparators evaluate the PC (possibly driving TSTART/TSTOP), and any taken
// branch is offered to the MTB. Also provides the ground-truth oracle tracer
// used by tests and the verifier's losslessness checks.
#pragma once

#include <vector>

#include "cpu/executor.hpp"
#include "trace/dwt.hpp"
#include "trace/mtb.hpp"

namespace raptrack::trace {

class TraceFabric final : public cpu::TraceSink {
 public:
  TraceFabric(Dwt& dwt, Mtb& mtb) : dwt_(&dwt), mtb_(&mtb) {}

  void on_instruction(Address pc) override {
    // Tick first: a TSTART raised at this PC must not become live until the
    // *next* instruction (models MTB activation latency; see Mtb).
    mtb_->on_instruction_retired();
    dwt_->observe(pc);
  }

  void on_branch(Address source, Address destination,
                 isa::BranchKind kind) override {
    mtb_->on_branch(source, destination, kind);
  }

  /// Direct unit access for the executor's superblock fast path: inert-
  /// window queries and batched retirement bypass the per-instruction sink
  /// interface (see SinksFabric/SinksFabricOracle in executor.cpp).
  Dwt& dwt() { return *dwt_; }
  Mtb& mtb() { return *mtb_; }

 private:
  Dwt* dwt_;
  Mtb* mtb_;
};

/// One ground-truth control-flow event (every taken branch, no gating).
struct OracleEvent {
  Address source = 0;
  Address destination = 0;
  isa::BranchKind kind = isa::BranchKind::None;

  friend bool operator==(const OracleEvent&, const OracleEvent&) = default;
};

/// Records the complete branch history of a run — what a lossless CFA
/// scheme must allow the Verifier to reconstruct.
class OracleTracer final : public cpu::TraceSink {
 public:
  void on_branch(Address source, Address destination,
                 isa::BranchKind kind) override {
    events_.push_back({source, destination, kind});
  }

  const std::vector<OracleEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<OracleEvent> events_;
};

}  // namespace raptrack::trace
