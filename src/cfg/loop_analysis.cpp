#include "cfg/loop_analysis.hpp"

#include <algorithm>

namespace raptrack::cfg {

using isa::BranchKind;
using isa::Instruction;
using isa::Op;
using isa::Reg;

namespace {

/// Does `instr` write `reg` (excluding control-flow side effects)?
bool writes_register(const Instruction& in, Reg reg) {
  switch (isa::format_of(in.op)) {
    case isa::Format::Mov16:
    case isa::Format::AluReg:
    case isa::Format::AluImm:
      return !isa::is_compare(in.op) && in.rd == reg;
    case isa::Format::MemImm:
    case isa::Format::MemReg:
      return isa::is_load(in.op) && in.rd == reg;
    case isa::Format::RegList:
      return in.op == Op::POP && (in.reg_list & (1u << isa::index(reg))) != 0;
    default:
      return false;
  }
}

/// The innermost natural loop containing `block` (smallest body), if any.
const NaturalLoop* innermost_loop(const std::vector<NaturalLoop>& loops,
                                  Address block) {
  const NaturalLoop* best = nullptr;
  for (const auto& loop : loops) {
    if (!loop.contains_block(block)) continue;
    if (!best || loop.blocks.size() < best->blocks.size()) best = &loop;
  }
  return best;
}

/// Try to prove `loop` is a "simple loop" per §IV-D. Returns nullopt when
/// any condition fails (the loop then gets per-iteration trampolines).
std::optional<SimpleLoop> classify_simple(const Cfg& cfg,
                                          const NaturalLoop& loop) {
  const Program& program = cfg.program();

  // (1) Exactly one conditional branch inside the loop; no calls, indirect
  //     branches, returns, or SVCs (all internal branches deterministic).
  Address bcc_site = 0;
  int bcc_count = 0;
  for (const Address block_begin : loop.blocks) {
    const BasicBlock& block = cfg.block_at(block_begin);
    for (Address addr = block.begin; addr < block.end; addr += 4) {
      const auto instr = program.instruction_at(addr);
      if (!instr) return std::nullopt;
      if (instr->op == Op::SVC) return std::nullopt;
      switch (isa::branch_kind(*instr)) {
        case BranchKind::Conditional:
          ++bcc_count;
          bcc_site = addr;
          break;
        case BranchKind::None:
        case BranchKind::Direct:
          break;
        default:
          return std::nullopt;  // calls/indirect/returns/halts: not simple
      }
    }
  }
  if (bcc_count != 1) return std::nullopt;

  const Instruction bcc = *program.instruction_at(bcc_site);
  const Address taken_target = isa::branch_target(bcc, bcc_site);
  const BasicBlock& bcc_block = cfg.block_containing(bcc_site);
  if (bcc_block.last_instr() != bcc_site) return std::nullopt;  // mid-block Bcc impossible

  // (2) Shape: backward latch branch (taken continues) or forward exit
  //     branch (taken exits, a direct latch closes the loop).
  bool forward_exit;
  if (taken_target == loop.header && bcc_block.begin == loop.latch) {
    forward_exit = false;
  } else if (taken_target > bcc_site &&
             !loop.contains_block(cfg.block_containing(taken_target).begin)) {
    // Fall-through must stay in the loop and the latch must be a direct B.
    const BasicBlock& latch = cfg.block_at(loop.latch);
    if (latch.terminator != BranchKind::Direct) return std::nullopt;
    if (bcc_block.end >= cfg.code_end() ||
        !loop.contains_block(cfg.block_containing(bcc_block.end).begin)) {
      return std::nullopt;
    }
    forward_exit = true;
  } else {
    return std::nullopt;
  }

  // (3) The instruction immediately before the Bcc is CMPI iter, #bound.
  if (bcc_site < bcc_block.begin + 4) return std::nullopt;
  const auto cmp = program.instruction_at(bcc_site - 4);
  if (!cmp || cmp->op != Op::CMPI) return std::nullopt;
  const Reg iterator = cmp->rn;
  const i32 bound = cmp->imm;

  // (4) The iterator is written by exactly one instruction in the loop: an
  //     ADDI/SUBI with rd == rn == iterator, in a block that dominates the
  //     latch (executes every iteration).
  Address write_site = 0;
  int write_count = 0;
  for (const Address block_begin : loop.blocks) {
    const BasicBlock& block = cfg.block_at(block_begin);
    for (Address addr = block.begin; addr < block.end; addr += 4) {
      const auto instr = program.instruction_at(addr);
      if (!instr || !writes_register(*instr, iterator)) continue;
      ++write_count;
      write_site = addr;
      if ((instr->op != Op::ADDI && instr->op != Op::SUBI) ||
          instr->rn != iterator) {
        return std::nullopt;
      }
    }
  }
  if (write_count != 1) return std::nullopt;
  const Instruction write = *program.instruction_at(write_site);
  const i32 step = write.op == Op::ADDI ? write.imm : -write.imm;
  if (step == 0) return std::nullopt;
  if (!cfg.dominates(cfg.block_containing(write_site).begin, loop.latch)) {
    return std::nullopt;
  }

  // (5) Single entry: all predecessors of the header are loop blocks except
  //     one fall-through preheader block physically preceding the header.
  const BasicBlock& header = cfg.block_at(loop.header);
  Address preheader = 0;
  for (const Address pred : header.predecessors) {
    if (loop.contains_block(pred)) continue;
    const BasicBlock& pred_block = cfg.block_at(pred);
    if (preheader != 0) return std::nullopt;  // multiple outside entries
    if (pred_block.end != loop.header ||
        pred_block.terminator != BranchKind::None) {
      return std::nullopt;  // entered by a jump, not fall-through
    }
    preheader = pred;
  }
  if (preheader == 0) return std::nullopt;
  const Address preheader_instr = loop.header - 4;

  // No block of the loop other than the header may be entered from outside.
  for (const Address block_begin : loop.blocks) {
    if (block_begin == loop.header) continue;
    for (const Address pred : cfg.block_at(block_begin).predecessors) {
      if (!loop.contains_block(pred)) return std::nullopt;
    }
  }

  SimpleLoop result;
  result.header = loop.header;
  result.bcc_site = bcc_site;
  result.forward_exit = forward_exit;
  result.iterator = iterator;
  result.step = step;
  result.bound = bound;
  result.cond = bcc.cond;
  result.preheader_instr = preheader_instr;

  // (6) Constant initial value? MOVI iter, #k immediately before the header
  //     makes the whole loop statically reconstructible (§IV-C: "simple
  //     loops with fixed iteration counts" need no logging).
  const auto init = program.instruction_at(preheader_instr);
  if (init && init->op == Op::MOVI && init->rd == iterator) {
    result.constant_init = init->imm;
  }
  return result;
}

}  // namespace

LoopAnalysis analyze_loops(const Cfg& cfg) {
  LoopAnalysis analysis;
  analysis.loops = find_natural_loops(cfg);
  const Program& program = cfg.program();

  // Classify simple loops first (keyed by controlling branch).
  for (const auto& loop : analysis.loops) {
    if (const auto simple = classify_simple(cfg, loop)) {
      analysis.simple_loops[simple->bcc_site] = *simple;
    }
  }

  // Assign a role to every conditional branch in the code range.
  for (Address addr = cfg.code_begin(); addr < cfg.code_end(); addr += 4) {
    const auto instr = program.instruction_at(addr);
    if (!instr || isa::branch_kind(*instr) != BranchKind::Conditional) continue;

    if (const auto simple = analysis.simple_loops.find(addr);
        simple != analysis.simple_loops.end()) {
      analysis.bcc_roles[addr] = simple->second.constant_init
                                     ? BccRole::Deterministic
                                     : BccRole::LoopCondition;
      continue;
    }

    const Address taken_target = isa::branch_target(*instr, addr);
    if (taken_target <= addr) {
      // Backward: loop-continue or backward goto — log the taken edge (Fig 6).
      analysis.bcc_roles[addr] = BccRole::LogTaken;
      continue;
    }

    // Forward: the loop-implementing exit branch (Fig 7) — it terminates
    // the loop *header*, its taken edge leaves the loop, and its
    // fall-through stays inside. Mid-body exit branches ("break") are
    // ordinary Fig 5 conditionals: logging their (rare) taken edge is both
    // lossless and far cheaper than per-iteration logging.
    const BasicBlock& block = cfg.block_containing(addr);
    const NaturalLoop* loop = innermost_loop(analysis.loops, block.begin);
    if (loop && loop->header == block.begin && block.last_instr() == addr) {
      bool taken_exits = true;
      bool fallthrough_stays = false;
      if (taken_target >= cfg.code_begin() && taken_target < cfg.code_end()) {
        taken_exits = !loop->contains_block(cfg.block_containing(taken_target).begin);
      }
      if (block.end < cfg.code_end()) {
        fallthrough_stays = loop->contains_block(cfg.block_containing(block.end).begin);
      }
      if (taken_exits && fallthrough_stays) {
        analysis.bcc_roles[addr] = BccRole::LogNotTaken;
        continue;
      }
    }
    analysis.bcc_roles[addr] = BccRole::LogTaken;  // plain if/else (Fig 5)
  }
  return analysis;
}

}  // namespace raptrack::cfg
