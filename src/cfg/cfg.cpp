#include "cfg/cfg.hpp"

#include <algorithm>
#include <deque>

#include "common/hex.hpp"

namespace raptrack::cfg {

using isa::BranchKind;
using isa::Instruction;

Cfg::Cfg(const Program& program, Address entry, Address code_begin,
         Address code_end, const std::vector<Address>& extra_roots)
    : program_(&program),
      entry_(entry),
      code_begin_(code_begin),
      code_end_(code_end) {
  if (code_begin % 4 != 0 || code_end % 4 != 0 || code_end < code_begin) {
    throw Error("Cfg: bad code range");
  }
  if (entry < code_begin || entry >= code_end) {
    throw Error("Cfg: entry outside code range");
  }
  discover_roots(extra_roots);
  form_blocks();
  connect_blocks();
  mark_reachable();
  compute_dominators();
}

void Cfg::discover_roots(const std::vector<Address>& extra_roots) {
  roots_.push_back(entry_);
  for (const Address root : extra_roots) {
    if (root >= code_begin_ && root < code_end_) roots_.push_back(root);
  }
  // Direct-call targets are function entries: calls are not followed
  // intraprocedurally, so every callee forms its own CFG root.
  for (Address addr = code_begin_; addr < code_end_; addr += 4) {
    const auto instr = program_->instruction_at(addr);
    if (!instr) continue;
    if (isa::branch_kind(*instr) == isa::BranchKind::DirectCall) {
      const Address target = isa::branch_target(*instr, addr);
      if (target >= code_begin_ && target < code_end_) roots_.push_back(target);
    }
  }
  // Scan the data tail for words that look like code pointers — dispatch
  // tables (function-pointer arrays, switch jump tables) live there.
  for (Address addr = code_end_; addr + 4 <= program_->end(); addr += 4) {
    const u32 word = program_->word_at(addr);
    if (word >= code_begin_ && word < code_end_ && word % 4 == 0) {
      roots_.push_back(word);
    }
  }
  std::sort(roots_.begin(), roots_.end());
  roots_.erase(std::unique(roots_.begin(), roots_.end()), roots_.end());
}

std::vector<Address> Cfg::instruction_addresses() const {
  std::vector<Address> out;
  out.reserve((code_end_ - code_begin_) / 4);
  for (Address a = code_begin_; a < code_end_; a += 4) out.push_back(a);
  return out;
}

void Cfg::form_blocks() {
  std::set<Address> leaders;
  for (const Address root : roots_) leaders.insert(root);
  leaders.insert(code_begin_);

  for (Address addr = code_begin_; addr < code_end_; addr += 4) {
    const auto instr = program_->instruction_at(addr);
    if (!instr) continue;  // data interleaved in code range: treated as fall-through
    const BranchKind kind = isa::branch_kind(*instr);
    if (kind == BranchKind::None) continue;
    // The instruction after any control transfer starts a block.
    if (addr + 4 < code_end_) leaders.insert(addr + 4);
    // Static targets start blocks.
    if (kind == BranchKind::Direct || kind == BranchKind::DirectCall ||
        kind == BranchKind::Conditional) {
      const Address target = isa::branch_target(*instr, addr);
      if (target >= code_begin_ && target < code_end_) leaders.insert(target);
    }
  }

  auto it = leaders.begin();
  while (it != leaders.end()) {
    const Address begin = *it;
    ++it;
    const Address end = (it != leaders.end()) ? *it : code_end_;
    BasicBlock block;
    block.begin = begin;
    block.end = end;
    blocks_[begin] = block;
  }
}

void Cfg::connect_blocks() {
  for (auto& [begin, block] : blocks_) {
    const Address last = block.last_instr();
    const auto instr = program_->instruction_at(last);
    const BranchKind kind = instr ? isa::branch_kind(*instr) : BranchKind::None;
    block.terminator = kind;

    const auto add_edge = [&](Address target) {
      if (target < code_begin_ || target >= code_end_) return;
      const auto target_it = blocks_.find(target);
      if (target_it == blocks_.end()) return;  // mid-block target: malformed
      block.successors.push_back(target);
      target_it->second.predecessors.push_back(begin);
    };

    switch (kind) {
      case BranchKind::None:
        if (block.end < code_end_) add_edge(block.end);
        break;
      case BranchKind::Direct:
        add_edge(isa::branch_target(*instr, last));
        break;
      case BranchKind::DirectCall:
        // Interprocedural edge is not followed; the call returns to the
        // fall-through (standard CFG-for-rewriting treatment).
        if (block.end < code_end_) add_edge(block.end);
        break;
      case BranchKind::Conditional:
        add_edge(isa::branch_target(*instr, last));
        if (block.end < code_end_) add_edge(block.end);
        break;
      case BranchKind::IndirectCall:
        if (block.end < code_end_) add_edge(block.end);
        break;
      case BranchKind::IndirectJump:
      case BranchKind::Return:
      case BranchKind::Halt:
        break;  // no static successors
    }
  }
}

void Cfg::mark_reachable() {
  std::deque<Address> worklist(roots_.begin(), roots_.end());
  while (!worklist.empty()) {
    const Address begin = worklist.front();
    worklist.pop_front();
    const auto it = blocks_.find(begin);
    if (it == blocks_.end() || it->second.reachable) continue;
    it->second.reachable = true;
    for (const Address succ : it->second.successors) worklist.push_back(succ);
  }
}

void Cfg::compute_dominators() {
  // Iterative dataflow over reachable blocks in reverse post-order, with a
  // virtual super-root so multiple entry points are handled uniformly.
  std::vector<Address> order;
  std::set<Address> visited;
  // Post-order DFS from each root.
  std::vector<std::pair<Address, size_t>> stack;
  for (const Address root : roots_) {
    if (visited.count(root) || !blocks_.count(root)) continue;
    stack.emplace_back(root, 0);
    visited.insert(root);
    while (!stack.empty()) {
      auto& [block, next_succ] = stack.back();
      const auto& successors = blocks_.at(block).successors;
      if (next_succ < successors.size()) {
        const Address succ = successors[next_succ++];
        if (!visited.count(succ)) {
          visited.insert(succ);
          stack.emplace_back(succ, 0);
        }
      } else {
        order.push_back(block);
        stack.pop_back();
      }
    }
  }
  std::reverse(order.begin(), order.end());  // reverse post-order

  std::map<Address, size_t> rpo_index;
  for (size_t i = 0; i < order.size(); ++i) rpo_index[order[i]] = i;

  constexpr Address kSuperRoot = 0xffff'fffc;
  idom_.clear();
  for (const Address root : roots_) {
    if (blocks_.count(root)) idom_[root] = kSuperRoot;
  }

  const auto up = [&](Address block) -> Address {
    const auto it = idom_.find(block);
    return it == idom_.end() ? kSuperRoot : it->second;
  };
  const auto intersect = [&](Address a, Address b) {
    while (a != b) {
      // Chains from different roots meet only at the virtual super-root.
      if (a == kSuperRoot || b == kSuperRoot) return kSuperRoot;
      if (!rpo_index.count(a) || !rpo_index.count(b)) return kSuperRoot;
      if (rpo_index.at(a) > rpo_index.at(b)) {
        a = up(a);
      } else {
        b = up(b);
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Address block : order) {
      std::optional<Address> new_idom;
      for (const Address pred : blocks_.at(block).predecessors) {
        if (!idom_.count(pred)) continue;  // pred not yet processed/unreachable
        new_idom = new_idom ? intersect(*new_idom, pred) : pred;
      }
      // Roots keep the super-root as idom even if they have predecessors
      // (a root reached by a loop back edge is still an entry).
      if (std::find(roots_.begin(), roots_.end(), block) != roots_.end()) {
        new_idom = kSuperRoot;
      }
      if (!new_idom) continue;
      const auto it = idom_.find(block);
      if (it == idom_.end() || it->second != *new_idom) {
        idom_[block] = *new_idom;
        changed = true;
      }
    }
  }
}

const BasicBlock& Cfg::block_at(Address begin) const {
  const auto it = blocks_.find(begin);
  if (it == blocks_.end()) throw Error("Cfg: no block at " + hex32(begin));
  return it->second;
}

const BasicBlock& Cfg::block_containing(Address addr) const {
  auto it = blocks_.upper_bound(addr);
  if (it == blocks_.begin()) throw Error("Cfg: address below code " + hex32(addr));
  --it;
  if (!it->second.contains(addr)) throw Error("Cfg: address outside blocks " + hex32(addr));
  return it->second;
}

std::optional<Address> Cfg::idom(Address block) const {
  const auto it = idom_.find(block);
  if (it == idom_.end() || it->second == 0xffff'fffc) return std::nullopt;
  return it->second;
}

bool Cfg::dominates(Address a, Address b) const {
  Address current = b;
  for (;;) {
    if (current == a) return true;
    const auto up = idom_.find(current);
    if (up == idom_.end() || up->second == 0xffff'fffc) return false;
    current = up->second;
  }
}

std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg) {
  std::vector<NaturalLoop> loops;
  for (const auto& [begin, block] : cfg.blocks()) {
    if (!block.reachable) continue;
    for (const Address succ : block.successors) {
      if (!cfg.block_at(succ).reachable) continue;
      if (!cfg.dominates(succ, begin)) continue;  // not a back edge
      NaturalLoop loop;
      loop.header = succ;
      loop.latch = begin;
      loop.blocks.insert(succ);
      // Reverse DFS from the latch, stopping at the header.
      std::vector<Address> worklist{begin};
      while (!worklist.empty()) {
        const Address current = worklist.back();
        worklist.pop_back();
        if (loop.blocks.count(current)) continue;
        loop.blocks.insert(current);
        for (const Address pred : cfg.block_at(current).predecessors) {
          worklist.push_back(pred);
        }
      }
      loops.push_back(std::move(loop));
    }
  }
  return loops;
}

}  // namespace raptrack::cfg
