// Control-flow graph construction over a decoded program image. The
// RAP-Track offline phase (rewrite/) and the Verifier's policy checks
// (verify/) are CFG consumers: branch classification, natural-loop
// detection, and the "simple loop" analysis of §IV-D all live on top of
// this module.
//
// Blocks are formed by linear sweep over [code_begin, code_end); indirect
// branch targets are unknown statically, so dispatch-table roots are
// discovered by scanning the data section for words that point into the
// code range (exactly what the paper's binary-level static analysis must do).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace raptrack::cfg {

struct BasicBlock {
  Address begin = 0;
  Address end = 0;  ///< exclusive; last instruction at end-4

  Address last_instr() const { return end - isa::kInstrBytes; }
  bool contains(Address addr) const { return addr >= begin && addr < end; }

  std::vector<Address> successors;   ///< block begin addresses
  std::vector<Address> predecessors;
  isa::BranchKind terminator = isa::BranchKind::None;
  bool reachable = false;  ///< from entry or a discovered root
};

class Cfg {
 public:
  /// Build the CFG. `entry` is APP's entry point; `code_begin`/`code_end`
  /// bound the executable instructions (data follows at code_end).
  /// `extra_roots` adds known indirect-call targets; data words pointing
  /// into the code range are additionally auto-discovered as roots.
  Cfg(const Program& program, Address entry, Address code_begin,
      Address code_end, const std::vector<Address>& extra_roots = {});

  const Program& program() const { return *program_; }
  Address entry() const { return entry_; }
  Address code_begin() const { return code_begin_; }
  Address code_end() const { return code_end_; }

  const std::map<Address, BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block_at(Address begin) const;
  /// Block containing address `addr` (blocks partition the code range).
  const BasicBlock& block_containing(Address addr) const;

  const std::vector<Address>& roots() const { return roots_; }

  /// Immediate dominator of a reachable block (nullopt for roots).
  std::optional<Address> idom(Address block) const;
  /// Does block `a` dominate block `b`? (Both must be reachable.)
  bool dominates(Address a, Address b) const;

  /// Every instruction address in the code range, in order.
  std::vector<Address> instruction_addresses() const;

 private:
  void discover_roots(const std::vector<Address>& extra_roots);
  void form_blocks();
  void connect_blocks();
  void mark_reachable();
  void compute_dominators();

  const Program* program_;
  Address entry_;
  Address code_begin_;
  Address code_end_;
  std::vector<Address> roots_;
  std::map<Address, BasicBlock> blocks_;
  std::map<Address, Address> idom_;  // block -> immediate dominator
};

/// A natural loop: back edge latch->header where header dominates latch.
struct NaturalLoop {
  Address header = 0;
  Address latch = 0;              ///< block whose terminator is the back edge
  std::set<Address> blocks;       ///< block begin addresses in the loop body

  bool contains_block(Address block_begin) const {
    return blocks.count(block_begin) != 0;
  }
};

/// All natural loops of the reachable CFG (one per back edge).
std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg);

}  // namespace raptrack::cfg
