// Loop classification for the RAP-Track offline phase (§IV-C.3 and §IV-D).
//
// Every conditional branch (Bcc) gets a *role* that decides its trampoline:
//   - LogTaken      : non-loop and backward-loop branches (Figs 5, 6) —
//                     retarget the taken edge through an MTBAR slot.
//   - LogNotTaken   : forward loop-exit branches (Fig 7) — displace the
//                     first fall-through instruction through an MTBAR slot
//                     so each iteration is recorded.
//   - Deterministic : the controlling branch of a *simple loop with a
//                     constant initial value* — fully reconstructible
//                     statically, no logging at all.
//   - LoopCondition : the controlling branch of a simple loop with a
//                     variable initial value — one Secure-World call before
//                     the loop logs the condition (§IV-D), no per-iteration
//                     logging.
//
// "Simple loop" per the paper: comparison against a fixed constant,
// iterator updated by register-only (immediate) arithmetic, and all internal
// branches deterministic.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cfg/cfg.hpp"
#include "isa/condition.hpp"
#include "isa/registers.hpp"

namespace raptrack::cfg {

enum class BccRole : u8 {
  LogTaken,
  LogNotTaken,
  Deterministic,
  LoopCondition,
};

/// Analysis result for a simple loop (§IV-D).
struct SimpleLoop {
  Address header = 0;
  Address bcc_site = 0;          ///< the controlling conditional branch
  bool forward_exit = false;     ///< true: taken edge exits (Fig 7 shape)
  isa::Reg iterator = isa::Reg::R0;
  i32 step = 0;                  ///< per-iteration delta (signed)
  i32 bound = 0;                 ///< the CMPI constant
  isa::Cond cond = isa::Cond::AL;
  Address preheader_instr = 0;   ///< instruction displaced for the veneer
  std::optional<i32> constant_init;  ///< set when MOVI-initialized (deterministic)
};

struct LoopAnalysis {
  /// Role of every conditional branch in the code range, keyed by address.
  std::map<Address, BccRole> bcc_roles;
  /// Simple loops keyed by their controlling branch address. Present for
  /// both Deterministic and LoopCondition roles.
  std::map<Address, SimpleLoop> simple_loops;
  /// All natural loops (for diagnostics/benches).
  std::vector<NaturalLoop> loops;
};

/// Run the full loop/branch-role analysis.
LoopAnalysis analyze_loops(const Cfg& cfg);

}  // namespace raptrack::cfg
