# Empty compiler generated dependencies file for ablation_nops.
# This may be replaced when dependencies are built.
