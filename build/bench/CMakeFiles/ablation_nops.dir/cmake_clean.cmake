file(REMOVE_RECURSE
  "CMakeFiles/ablation_nops.dir/ablation_nops.cpp.o"
  "CMakeFiles/ablation_nops.dir/ablation_nops.cpp.o.d"
  "ablation_nops"
  "ablation_nops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
