file(REMOVE_RECURSE
  "CMakeFiles/ablation_speccfa.dir/ablation_speccfa.cpp.o"
  "CMakeFiles/ablation_speccfa.dir/ablation_speccfa.cpp.o.d"
  "ablation_speccfa"
  "ablation_speccfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speccfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
