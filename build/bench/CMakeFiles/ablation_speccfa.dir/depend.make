# Empty dependencies file for ablation_speccfa.
# This may be replaced when dependencies are built.
