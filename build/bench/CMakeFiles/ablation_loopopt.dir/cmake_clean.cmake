file(REMOVE_RECURSE
  "CMakeFiles/ablation_loopopt.dir/ablation_loopopt.cpp.o"
  "CMakeFiles/ablation_loopopt.dir/ablation_loopopt.cpp.o.d"
  "ablation_loopopt"
  "ablation_loopopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loopopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
