# Empty dependencies file for ablation_loopopt.
# This may be replaced when dependencies are built.
