file(REMOVE_RECURSE
  "CMakeFiles/fig10_codesize.dir/fig10_codesize.cpp.o"
  "CMakeFiles/fig10_codesize.dir/fig10_codesize.cpp.o.d"
  "fig10_codesize"
  "fig10_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
