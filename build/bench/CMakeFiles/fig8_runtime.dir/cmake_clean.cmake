file(REMOVE_RECURSE
  "CMakeFiles/fig8_runtime.dir/fig8_runtime.cpp.o"
  "CMakeFiles/fig8_runtime.dir/fig8_runtime.cpp.o.d"
  "fig8_runtime"
  "fig8_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
