# Empty dependencies file for fig9_cflog.
# This may be replaced when dependencies are built.
