
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_cflog.cpp" "bench/CMakeFiles/fig9_cflog.dir/fig9_cflog.cpp.o" "gcc" "bench/CMakeFiles/fig9_cflog.dir/fig9_cflog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/rap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/rap_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/cfa/CMakeFiles/rap_cfa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rap_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/rap_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/rap_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/rap_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/rap_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tz/CMakeFiles/rap_tz.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rap_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
