file(REMOVE_RECURSE
  "CMakeFiles/fig9_cflog.dir/fig9_cflog.cpp.o"
  "CMakeFiles/fig9_cflog.dir/fig9_cflog.cpp.o.d"
  "fig9_cflog"
  "fig9_cflog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cflog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
