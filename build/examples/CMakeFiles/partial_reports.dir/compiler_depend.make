# Empty compiler generated dependencies file for partial_reports.
# This may be replaced when dependencies are built.
