file(REMOVE_RECURSE
  "CMakeFiles/partial_reports.dir/partial_reports.cpp.o"
  "CMakeFiles/partial_reports.dir/partial_reports.cpp.o.d"
  "partial_reports"
  "partial_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
