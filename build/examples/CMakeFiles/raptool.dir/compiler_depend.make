# Empty compiler generated dependencies file for raptool.
# This may be replaced when dependencies are built.
