file(REMOVE_RECURSE
  "CMakeFiles/raptool.dir/raptool.cpp.o"
  "CMakeFiles/raptool.dir/raptool.cpp.o.d"
  "raptool"
  "raptool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
