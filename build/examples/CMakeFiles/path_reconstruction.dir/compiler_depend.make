# Empty compiler generated dependencies file for path_reconstruction.
# This may be replaced when dependencies are built.
