file(REMOVE_RECURSE
  "CMakeFiles/path_reconstruction.dir/path_reconstruction.cpp.o"
  "CMakeFiles/path_reconstruction.dir/path_reconstruction.cpp.o.d"
  "path_reconstruction"
  "path_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
