# Empty compiler generated dependencies file for test_replayer_search.
# This may be replaced when dependencies are built.
