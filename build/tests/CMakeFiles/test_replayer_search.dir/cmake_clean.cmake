file(REMOVE_RECURSE
  "CMakeFiles/test_replayer_search.dir/test_replayer_search.cpp.o"
  "CMakeFiles/test_replayer_search.dir/test_replayer_search.cpp.o.d"
  "test_replayer_search"
  "test_replayer_search.pdb"
  "test_replayer_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replayer_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
