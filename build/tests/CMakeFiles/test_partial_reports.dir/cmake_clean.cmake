file(REMOVE_RECURSE
  "CMakeFiles/test_partial_reports.dir/test_partial_reports.cpp.o"
  "CMakeFiles/test_partial_reports.dir/test_partial_reports.cpp.o.d"
  "test_partial_reports"
  "test_partial_reports.pdb"
  "test_partial_reports[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
