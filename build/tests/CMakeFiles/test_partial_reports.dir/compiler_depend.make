# Empty compiler generated dependencies file for test_partial_reports.
# This may be replaced when dependencies are built.
