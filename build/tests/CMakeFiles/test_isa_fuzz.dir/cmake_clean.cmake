file(REMOVE_RECURSE
  "CMakeFiles/test_isa_fuzz.dir/test_isa_fuzz.cpp.o"
  "CMakeFiles/test_isa_fuzz.dir/test_isa_fuzz.cpp.o.d"
  "test_isa_fuzz"
  "test_isa_fuzz.pdb"
  "test_isa_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
