# Empty dependencies file for test_isa_fuzz.
# This may be replaced when dependencies are built.
