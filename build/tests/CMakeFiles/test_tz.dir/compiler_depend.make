# Empty compiler generated dependencies file for test_tz.
# This may be replaced when dependencies are built.
