file(REMOVE_RECURSE
  "CMakeFiles/test_tz.dir/test_tz.cpp.o"
  "CMakeFiles/test_tz.dir/test_tz.cpp.o.d"
  "test_tz"
  "test_tz.pdb"
  "test_tz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
