file(REMOVE_RECURSE
  "CMakeFiles/test_cfa.dir/test_cfa.cpp.o"
  "CMakeFiles/test_cfa.dir/test_cfa.cpp.o.d"
  "test_cfa"
  "test_cfa.pdb"
  "test_cfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
