# Empty compiler generated dependencies file for test_cfa.
# This may be replaced when dependencies are built.
