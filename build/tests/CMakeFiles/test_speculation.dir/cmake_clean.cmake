file(REMOVE_RECURSE
  "CMakeFiles/test_speculation.dir/test_speculation.cpp.o"
  "CMakeFiles/test_speculation.dir/test_speculation.cpp.o.d"
  "test_speculation"
  "test_speculation.pdb"
  "test_speculation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
