# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_instr[1]_include.cmake")
include("/root/repo/build/tests/test_cfa[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_partial_reports[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_replayer_search[1]_include.cmake")
include("/root/repo/build/tests/test_audit[1]_include.cmake")
include("/root/repo/build/tests/test_speculation[1]_include.cmake")
include("/root/repo/build/tests/test_tz[1]_include.cmake")
include("/root/repo/build/tests/test_isa_fuzz[1]_include.cmake")
