file(REMOVE_RECURSE
  "CMakeFiles/rap_trace.dir/dwt.cpp.o"
  "CMakeFiles/rap_trace.dir/dwt.cpp.o.d"
  "CMakeFiles/rap_trace.dir/mtb.cpp.o"
  "CMakeFiles/rap_trace.dir/mtb.cpp.o.d"
  "librap_trace.a"
  "librap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
