file(REMOVE_RECURSE
  "librap_apps.a"
)
