file(REMOVE_RECURSE
  "CMakeFiles/rap_apps.dir/app_beebs_data.cpp.o"
  "CMakeFiles/rap_apps.dir/app_beebs_data.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_beebs_extra.cpp.o"
  "CMakeFiles/rap_apps.dir/app_beebs_extra.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_beebs_math.cpp.o"
  "CMakeFiles/rap_apps.dir/app_beebs_math.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_geiger.cpp.o"
  "CMakeFiles/rap_apps.dir/app_geiger.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_gps.cpp.o"
  "CMakeFiles/rap_apps.dir/app_gps.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_syringe.cpp.o"
  "CMakeFiles/rap_apps.dir/app_syringe.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_temperature.cpp.o"
  "CMakeFiles/rap_apps.dir/app_temperature.cpp.o.d"
  "CMakeFiles/rap_apps.dir/app_ultrasonic.cpp.o"
  "CMakeFiles/rap_apps.dir/app_ultrasonic.cpp.o.d"
  "CMakeFiles/rap_apps.dir/peripherals.cpp.o"
  "CMakeFiles/rap_apps.dir/peripherals.cpp.o.d"
  "CMakeFiles/rap_apps.dir/registry.cpp.o"
  "CMakeFiles/rap_apps.dir/registry.cpp.o.d"
  "CMakeFiles/rap_apps.dir/runner.cpp.o"
  "CMakeFiles/rap_apps.dir/runner.cpp.o.d"
  "CMakeFiles/rap_apps.dir/synthetic.cpp.o"
  "CMakeFiles/rap_apps.dir/synthetic.cpp.o.d"
  "librap_apps.a"
  "librap_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
