# Empty compiler generated dependencies file for rap_apps.
# This may be replaced when dependencies are built.
