file(REMOVE_RECURSE
  "CMakeFiles/rap_common.dir/hex.cpp.o"
  "CMakeFiles/rap_common.dir/hex.cpp.o.d"
  "CMakeFiles/rap_common.dir/rng.cpp.o"
  "CMakeFiles/rap_common.dir/rng.cpp.o.d"
  "librap_common.a"
  "librap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
