file(REMOVE_RECURSE
  "librap_common.a"
)
