# Empty compiler generated dependencies file for rap_common.
# This may be replaced when dependencies are built.
