file(REMOVE_RECURSE
  "CMakeFiles/rap_rewrite.dir/manifest.cpp.o"
  "CMakeFiles/rap_rewrite.dir/manifest.cpp.o.d"
  "CMakeFiles/rap_rewrite.dir/manifest_io.cpp.o"
  "CMakeFiles/rap_rewrite.dir/manifest_io.cpp.o.d"
  "CMakeFiles/rap_rewrite.dir/rap_rewriter.cpp.o"
  "CMakeFiles/rap_rewrite.dir/rap_rewriter.cpp.o.d"
  "librap_rewrite.a"
  "librap_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
