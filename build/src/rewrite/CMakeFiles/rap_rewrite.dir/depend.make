# Empty dependencies file for rap_rewrite.
# This may be replaced when dependencies are built.
