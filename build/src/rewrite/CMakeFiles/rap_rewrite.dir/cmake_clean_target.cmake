file(REMOVE_RECURSE
  "librap_rewrite.a"
)
