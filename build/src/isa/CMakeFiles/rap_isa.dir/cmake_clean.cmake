file(REMOVE_RECURSE
  "CMakeFiles/rap_isa.dir/cycle_model.cpp.o"
  "CMakeFiles/rap_isa.dir/cycle_model.cpp.o.d"
  "CMakeFiles/rap_isa.dir/instruction.cpp.o"
  "CMakeFiles/rap_isa.dir/instruction.cpp.o.d"
  "librap_isa.a"
  "librap_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
