file(REMOVE_RECURSE
  "librap_isa.a"
)
