
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cycle_model.cpp" "src/isa/CMakeFiles/rap_isa.dir/cycle_model.cpp.o" "gcc" "src/isa/CMakeFiles/rap_isa.dir/cycle_model.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/rap_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/rap_isa.dir/instruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
