# Empty dependencies file for rap_isa.
# This may be replaced when dependencies are built.
