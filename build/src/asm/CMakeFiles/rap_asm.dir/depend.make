# Empty dependencies file for rap_asm.
# This may be replaced when dependencies are built.
