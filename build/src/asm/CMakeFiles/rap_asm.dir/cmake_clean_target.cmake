file(REMOVE_RECURSE
  "librap_asm.a"
)
