file(REMOVE_RECURSE
  "CMakeFiles/rap_asm.dir/assembler.cpp.o"
  "CMakeFiles/rap_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/rap_asm.dir/program.cpp.o"
  "CMakeFiles/rap_asm.dir/program.cpp.o.d"
  "librap_asm.a"
  "librap_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
