file(REMOVE_RECURSE
  "librap_instr.a"
)
