# Empty dependencies file for rap_instr.
# This may be replaced when dependencies are built.
