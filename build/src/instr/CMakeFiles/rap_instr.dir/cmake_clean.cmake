file(REMOVE_RECURSE
  "CMakeFiles/rap_instr.dir/traces_engine.cpp.o"
  "CMakeFiles/rap_instr.dir/traces_engine.cpp.o.d"
  "CMakeFiles/rap_instr.dir/traces_rewriter.cpp.o"
  "CMakeFiles/rap_instr.dir/traces_rewriter.cpp.o.d"
  "librap_instr.a"
  "librap_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
