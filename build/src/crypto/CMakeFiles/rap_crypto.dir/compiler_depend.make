# Empty compiler generated dependencies file for rap_crypto.
# This may be replaced when dependencies are built.
