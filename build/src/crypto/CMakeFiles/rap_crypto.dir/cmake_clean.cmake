file(REMOVE_RECURSE
  "CMakeFiles/rap_crypto.dir/hmac.cpp.o"
  "CMakeFiles/rap_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/rap_crypto.dir/sha256.cpp.o"
  "CMakeFiles/rap_crypto.dir/sha256.cpp.o.d"
  "librap_crypto.a"
  "librap_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
