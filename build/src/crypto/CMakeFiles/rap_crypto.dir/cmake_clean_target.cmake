file(REMOVE_RECURSE
  "librap_crypto.a"
)
