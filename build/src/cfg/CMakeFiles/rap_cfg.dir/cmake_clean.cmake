file(REMOVE_RECURSE
  "CMakeFiles/rap_cfg.dir/cfg.cpp.o"
  "CMakeFiles/rap_cfg.dir/cfg.cpp.o.d"
  "CMakeFiles/rap_cfg.dir/loop_analysis.cpp.o"
  "CMakeFiles/rap_cfg.dir/loop_analysis.cpp.o.d"
  "librap_cfg.a"
  "librap_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
