# Empty compiler generated dependencies file for rap_cfg.
# This may be replaced when dependencies are built.
