file(REMOVE_RECURSE
  "librap_verify.a"
)
