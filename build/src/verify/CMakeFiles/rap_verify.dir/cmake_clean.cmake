file(REMOVE_RECURSE
  "CMakeFiles/rap_verify.dir/audit.cpp.o"
  "CMakeFiles/rap_verify.dir/audit.cpp.o.d"
  "CMakeFiles/rap_verify.dir/replayer.cpp.o"
  "CMakeFiles/rap_verify.dir/replayer.cpp.o.d"
  "CMakeFiles/rap_verify.dir/verifier.cpp.o"
  "CMakeFiles/rap_verify.dir/verifier.cpp.o.d"
  "librap_verify.a"
  "librap_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
