# Empty dependencies file for rap_verify.
# This may be replaced when dependencies are built.
