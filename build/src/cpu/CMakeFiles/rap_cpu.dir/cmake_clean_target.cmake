file(REMOVE_RECURSE
  "librap_cpu.a"
)
