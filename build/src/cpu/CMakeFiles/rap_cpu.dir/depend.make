# Empty dependencies file for rap_cpu.
# This may be replaced when dependencies are built.
