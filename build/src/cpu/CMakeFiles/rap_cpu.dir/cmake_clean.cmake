file(REMOVE_RECURSE
  "CMakeFiles/rap_cpu.dir/executor.cpp.o"
  "CMakeFiles/rap_cpu.dir/executor.cpp.o.d"
  "librap_cpu.a"
  "librap_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
