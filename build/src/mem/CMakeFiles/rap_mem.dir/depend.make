# Empty dependencies file for rap_mem.
# This may be replaced when dependencies are built.
