
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/memory_map.cpp" "src/mem/CMakeFiles/rap_mem.dir/memory_map.cpp.o" "gcc" "src/mem/CMakeFiles/rap_mem.dir/memory_map.cpp.o.d"
  "/root/repo/src/mem/mpu.cpp" "src/mem/CMakeFiles/rap_mem.dir/mpu.cpp.o" "gcc" "src/mem/CMakeFiles/rap_mem.dir/mpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
