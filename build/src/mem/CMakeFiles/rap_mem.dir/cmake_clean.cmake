file(REMOVE_RECURSE
  "CMakeFiles/rap_mem.dir/memory_map.cpp.o"
  "CMakeFiles/rap_mem.dir/memory_map.cpp.o.d"
  "CMakeFiles/rap_mem.dir/mpu.cpp.o"
  "CMakeFiles/rap_mem.dir/mpu.cpp.o.d"
  "librap_mem.a"
  "librap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
