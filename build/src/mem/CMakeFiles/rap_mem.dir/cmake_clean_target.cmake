file(REMOVE_RECURSE
  "librap_mem.a"
)
