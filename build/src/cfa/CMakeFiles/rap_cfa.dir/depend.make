# Empty dependencies file for rap_cfa.
# This may be replaced when dependencies are built.
