file(REMOVE_RECURSE
  "librap_cfa.a"
)
