file(REMOVE_RECURSE
  "CMakeFiles/rap_cfa.dir/provers.cpp.o"
  "CMakeFiles/rap_cfa.dir/provers.cpp.o.d"
  "CMakeFiles/rap_cfa.dir/report.cpp.o"
  "CMakeFiles/rap_cfa.dir/report.cpp.o.d"
  "CMakeFiles/rap_cfa.dir/speculation.cpp.o"
  "CMakeFiles/rap_cfa.dir/speculation.cpp.o.d"
  "librap_cfa.a"
  "librap_cfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_cfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
