# Empty compiler generated dependencies file for rap_tz.
# This may be replaced when dependencies are built.
