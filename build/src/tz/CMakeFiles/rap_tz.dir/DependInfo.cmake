
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tz/secure_monitor.cpp" "src/tz/CMakeFiles/rap_tz.dir/secure_monitor.cpp.o" "gcc" "src/tz/CMakeFiles/rap_tz.dir/secure_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/rap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rap_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
