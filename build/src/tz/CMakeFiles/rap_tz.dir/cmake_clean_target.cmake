file(REMOVE_RECURSE
  "librap_tz.a"
)
