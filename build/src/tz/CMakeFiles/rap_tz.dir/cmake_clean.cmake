file(REMOVE_RECURSE
  "CMakeFiles/rap_tz.dir/secure_monitor.cpp.o"
  "CMakeFiles/rap_tz.dir/secure_monitor.cpp.o.d"
  "librap_tz.a"
  "librap_tz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rap_tz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
